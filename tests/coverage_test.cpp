// Small-surface coverage tests for APIs not exercised elsewhere: stopwatch,
// transform edge cases, mesh statistics on degenerate inputs, solver stats
// accessors, colormap/field rendering options, and tissue table completeness.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "base/stopwatch.h"
#include "image/transform.h"
#include "mesh/tet_mesh.h"
#include "mesh/tri_surface.h"
#include "phantom/brain_phantom.h"
#include "solver/krylov.h"
#include "viz/colormap.h"

namespace neuro {
namespace {

TEST(StopwatchTest, MeasuresElapsedAndResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const double t1 = sw.seconds();
  EXPECT_GE(t1, 0.010);
  EXPECT_LT(t1, 3.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), t1);
}

TEST(RigidTransformTest, GimbalBranchInverse) {
  // ry = ±90° hits the cos(ry) ≈ 0 branch of the Euler extraction; the
  // inverse must still invert the mapping.
  RigidTransform t;
  t.rotation = {0.2, 1.5707963267948966, 0.0};
  t.translation = {1, 2, 3};
  t.center = {5, 5, 5};
  const RigidTransform ti = t.inverse();
  for (const Vec3 p : {Vec3{0, 0, 0}, Vec3{3, -2, 7}, Vec3{10, 10, 10}}) {
    EXPECT_LT(norm(ti.apply(t.apply(p)) - p), 1e-9);
  }
}

TEST(RigidTransformTest, CenterChangesFixedPoint) {
  RigidTransform t;
  t.rotation = {0, 0, 0.5};
  t.center = {10, 20, 30};
  EXPECT_LT(norm(t.apply(t.center) - t.center), 1e-12);  // center is fixed
  EXPECT_GT(norm(t.apply(Vec3{0, 0, 0})), 1.0);          // far points move
}

TEST(MeshStatsTest, EmptyMeshIsWellBehaved) {
  mesh::TetMesh empty;
  EXPECT_EQ(empty.num_nodes(), 0);
  EXPECT_EQ(empty.num_tets(), 0);
  EXPECT_DOUBLE_EQ(mesh::total_volume(empty), 0.0);
  const mesh::QualityStats q = mesh::quality_stats(empty);
  EXPECT_DOUBLE_EQ(q.mean_quality, 0.0);
  EXPECT_FALSE(mesh::bounds(empty).valid());
  mesh::TriSurface s;
  EXPECT_DOUBLE_EQ(mesh::surface_area(s), 0.0);
  EXPECT_TRUE(mesh::vertex_normals(s).empty());
}

TEST(MeshBoundsTest, CoversAllNodes) {
  mesh::TetMesh mesh;
  mesh.nodes = {{-1, 0, 5}, {3, -2, 0}, {0, 7, 1}};
  const Aabb box = mesh::bounds(mesh);
  EXPECT_TRUE(box.valid());
  EXPECT_DOUBLE_EQ(box.lo.x, -1);
  EXPECT_DOUBLE_EQ(box.hi.y, 7);
  for (const auto& n : mesh.nodes) EXPECT_TRUE(box.contains(n));
}

TEST(SolveStatsTest, RelativeResidualGuards) {
  solver::SolveStats s;
  EXPECT_DOUBLE_EQ(s.relative_residual(), 0.0);  // zero initial residual
  s.initial_residual = 10.0;
  s.final_residual = 1.0;
  EXPECT_DOUBLE_EQ(s.relative_residual(), 0.1);
}

TEST(WorkRecordTest, AccumulationOperator) {
  par::WorkRecord a, b;
  a.flops = 1;
  a.comm_msgs = 2;
  b.flops = 3;
  b.coll_bytes = 4;
  a += b;
  EXPECT_DOUBLE_EQ(a.flops, 4);
  EXPECT_DOUBLE_EQ(a.comm_msgs, 2);
  EXPECT_DOUBLE_EQ(a.coll_bytes, 4);
}

TEST(TissueTableTest, EveryTissueHasDistinctIntensity) {
  using phantom::Tissue;
  const Tissue all[] = {Tissue::kBackground, Tissue::kSkin,      Tissue::kSkullGap,
                        Tissue::kBrain,      Tissue::kVentricle, Tissue::kFalx,
                        Tissue::kTumor};
  for (const auto a : all) {
    EXPECT_GT(phantom::tissue_intensity(a), 0.0);
    for (const auto b : all) {
      if (a != b) {
        EXPECT_NE(phantom::tissue_intensity(a), phantom::tissue_intensity(b));
      }
    }
  }
}

TEST(FieldRenderTest, ExplicitMaxControlsScale) {
  ImageV field({4, 4, 1});
  field(1, 1, 0) = Vec3{1, 0, 0};
  // With a huge explicit max, even the peak stays at the dark end.
  const viz::RgbImage scaled = viz::render_field_magnitude(field, 0, 100.0);
  const viz::RgbImage autoed = viz::render_field_magnitude(field, 0);
  const double luma_scaled =
      0.299 * scaled.at(1, 1).r + 0.587 * scaled.at(1, 1).g + 0.114 * scaled.at(1, 1).b;
  const double luma_auto =
      0.299 * autoed.at(1, 1).r + 0.587 * autoed.at(1, 1).g + 0.114 * autoed.at(1, 1).b;
  EXPECT_LT(luma_scaled, luma_auto);
}

TEST(BarycentricOutsideTest, SumsToOneEverywhere) {
  // Barycentric coordinates form an affine partition of unity even outside.
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0, 0, 1};
  for (const Vec3 p : {Vec3{5, 5, 5}, Vec3{-2, 0.3, 0.1}, Vec3{0.1, 0.1, 0.1}}) {
    const auto l = mesh::barycentric(a, b, c, d, p);
    EXPECT_NEAR(l[0] + l[1] + l[2] + l[3], 1.0, 1e-9);
    // Reconstruction property: Σ λi vi = p.
    const Vec3 rec = l[0] * a + l[1] * b + l[2] * c + l[3] * d;
    EXPECT_LT(norm(rec - p), 1e-9);
  }
}

TEST(TetVolumeDegenerateTest, CoplanarIsZero) {
  EXPECT_DOUBLE_EQ(
      mesh::tet_volume({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0.3, 0.3, 0.0}), 0.0);
}

}  // namespace
}  // namespace neuro

// Determinism regression suite. DESIGN.md §6 claims bit-for-bit
// reproducibility for a fixed seed — the property the regression tests and
// the calibrated benches stand on. These tests assert it end to end:
// identical runs produce identical bits, including across repeated parallel
// executions (fixed-order reductions) and for the full pipeline.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "fem/deformation_solver.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "obs/metrics.h"
#include "phantom/brain_phantom.h"
#include "seg/intraop.h"

namespace neuro {
namespace {

/// NDJSON with wall-clock instruments removed: names ending in `.seconds`
/// (and `total_seconds`) are timings by convention and the only sanctioned
/// run-to-run variation in a metrics export (docs/static_analysis.md).
std::string drop_timing_lines(const std::string& ndjson) {
  std::istringstream in(ndjson);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("seconds") == std::string::npos) out << line << '\n';
  }
  return out.str();
}

TEST(DeterminismTest, PhantomBitwiseStable) {
  phantom::PhantomConfig pc;
  pc.dims = {36, 36, 36};
  pc.spacing = {3.2, 3.2, 3.2};
  const auto a = phantom::make_case(pc, phantom::ShiftConfig{});
  const auto b = phantom::make_case(pc, phantom::ShiftConfig{});
  EXPECT_EQ(a.preop.data(), b.preop.data());
  EXPECT_EQ(a.intraop.data(), b.intraop.data());
  EXPECT_EQ(a.intraop_labels.data(), b.intraop_labels.data());
  // Vector fields: compare element-wise exactly.
  for (std::size_t i = 0; i < a.true_backward_shift.size(); ++i) {
    ASSERT_EQ(norm(a.true_backward_shift.data()[i] - b.true_backward_shift.data()[i]),
              0.0);
  }
}

TEST(DeterminismTest, ParallelSolveBitwiseRepeatable) {
  // Two runs at the same rank count must agree to the last bit: collectives
  // reduce in fixed order, so floating-point nondeterminism cannot creep in.
  ImageL labels({7, 7, 7}, 1, {2, 2, 2});
  mesh::MesherConfig mc;
  mc.stride = 2;
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, mc);
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = mesh.nodes[n];
    bcs.emplace_back(n, Vec3{0.01 * p.y, -0.02 * p.z, 0.005 * p.x});
  }
  fem::DeformationSolveOptions opt;
  opt.nranks = 4;
  const auto r1 = fem::solve_deformation(mesh, fem::MaterialMap::homogeneous_brain(),
                                         bcs, opt);
  const auto r2 = fem::solve_deformation(mesh, fem::MaterialMap::homogeneous_brain(),
                                         bcs, opt);
  ASSERT_EQ(r1.node_displacements.size(), r2.node_displacements.size());
  for (std::size_t n = 0; n < r1.node_displacements.size(); ++n) {
    ASSERT_EQ(r1.node_displacements[n].x, r2.node_displacements[n].x);
    ASSERT_EQ(r1.node_displacements[n].y, r2.node_displacements[n].y);
    ASSERT_EQ(r1.node_displacements[n].z, r2.node_displacements[n].z);
  }
  EXPECT_EQ(r1.stats.iterations, r2.stats.iterations);
  EXPECT_EQ(r1.stats.final_residual, r2.stats.final_residual);
}

TEST(DeterminismTest, WorkRecordsAreRunInvariant) {
  // The scaling figures rest on this: work records are functions of the
  // input, not of scheduling.
  ImageL labels({7, 7, 7}, 1, {2, 2, 2});
  mesh::MesherConfig mc;
  mc.stride = 2;
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, mc);
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) bcs.emplace_back(n, Vec3{0, 0, 0.1});
  fem::DeformationSolveOptions opt;
  opt.nranks = 3;
  const auto r1 = fem::solve_deformation(mesh, fem::MaterialMap::homogeneous_brain(),
                                         bcs, opt);
  const auto r2 = fem::solve_deformation(mesh, fem::MaterialMap::homogeneous_brain(),
                                         bcs, opt);
  for (const char* phase : {"assemble", "solve"}) {
    const auto& w1 = r1.work.phase(phase);
    const auto& w2 = r2.work.phase(phase);
    ASSERT_EQ(w1.size(), w2.size());
    for (std::size_t r = 0; r < w1.size(); ++r) {
      ASSERT_EQ(w1[r].flops, w2[r].flops) << phase << " rank " << r;
      ASSERT_EQ(w1[r].comm_bytes, w2[r].comm_bytes) << phase << " rank " << r;
      ASSERT_EQ(w1[r].coll_rounds, w2[r].coll_rounds) << phase << " rank " << r;
    }
  }
}

TEST(DeterminismTest, SegmentationBitwiseStable) {
  phantom::PhantomConfig pc;
  pc.dims = {32, 32, 32};
  pc.spacing = {3.5, 3.5, 3.5};
  const auto cas = phantom::make_case(pc, phantom::ShiftConfig{});
  seg::IntraopSegmentationConfig cfg;
  cfg.classes = {0, 1, 2, 3, 4};
  cfg.exclude_classes = {5, 6};
  const auto a = seg::segment_intraop(cas.intraop, cas.preop_labels, cfg);
  const auto b = seg::segment_intraop(cas.intraop, cas.preop_labels, cfg);
  EXPECT_EQ(a.labels.data(), b.labels.data());
  ASSERT_EQ(a.prototypes.size(), b.prototypes.size());
  for (std::size_t i = 0; i < a.prototypes.size(); ++i) {
    EXPECT_EQ(a.prototypes[i].voxel, b.prototypes[i].voxel);
  }
}

TEST(DeterminismTest, FullPipelineBitwiseStable) {
  phantom::PhantomConfig pc;
  pc.dims = {36, 36, 36};
  pc.spacing = {3.2, 3.2, 3.2};
  const auto cas = phantom::make_case(pc, phantom::ShiftConfig{});
  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = false;
  config.fem.nranks = 2;
  const auto r1 =
      core::run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);
  const auto r2 =
      core::run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);
  EXPECT_EQ(r1.warped_preop.data(), r2.warped_preop.data());
  EXPECT_EQ(r1.segmentation.labels.data(), r2.segmentation.labels.data());
  EXPECT_EQ(r1.fem.stats.iterations, r2.fem.stats.iterations);
}

TEST(DeterminismTest, MultiRankPipelineAndMetricsBitwiseStable) {
  // The full intraop pipeline, run twice with identical inputs and seeds,
  // must reproduce every exported artifact byte for byte — the deformation
  // fields AND the (timing-stripped) metrics NDJSON — at every rank count.
  // This is the runtime side of the contract check_numerics.py enforces
  // statically.
  phantom::PhantomConfig pc;
  pc.dims = {36, 36, 36};
  pc.spacing = {3.2, 3.2, 3.2};
  const auto cas = phantom::make_case(pc, phantom::ShiftConfig{});
  for (const int nranks : {1, 2, 4}) {
    SCOPED_TRACE(testing::Message() << "nranks=" << nranks);
    core::PipelineConfig config = core::default_pipeline_config();
    config.do_rigid_registration = false;
    config.fem.nranks = nranks;

    const auto run_once = [&](std::string& metrics_ndjson) {
      obs::metrics().reset_values();
      auto result = core::run_intraop_pipeline(cas.preop, cas.preop_labels,
                                               cas.intraop, config);
      std::ostringstream os;
      obs::metrics().write_ndjson(os);
      metrics_ndjson = drop_timing_lines(os.str());
      return result;
    };
    std::string m1;
    std::string m2;
    const auto r1 = run_once(m1);
    const auto r2 = run_once(m2);

    ASSERT_EQ(r1.backward_field.data().size(), r2.backward_field.data().size());
    EXPECT_EQ(std::memcmp(r1.backward_field.data().data(),
                          r2.backward_field.data().data(),
                          r1.backward_field.data().size() * sizeof(Vec3)),
              0);
    ASSERT_EQ(r1.forward_field.data().size(), r2.forward_field.data().size());
    EXPECT_EQ(std::memcmp(r1.forward_field.data().data(),
                          r2.forward_field.data().data(),
                          r1.forward_field.data().size() * sizeof(Vec3)),
              0);
    ASSERT_EQ(r1.warped_preop.data().size(), r2.warped_preop.data().size());
    EXPECT_EQ(std::memcmp(r1.warped_preop.data().data(),
                          r2.warped_preop.data().data(),
                          r1.warped_preop.data().size() * sizeof(float)),
              0);
    EXPECT_FALSE(m1.empty());
    EXPECT_EQ(m1, m2);
  }
}

}  // namespace
}  // namespace neuro

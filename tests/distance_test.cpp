// Tests for the exact Euclidean distance transform, including a brute-force
// property sweep over random volumes (the EDT is the foundation of the
// paper's spatially varying localization prior, so exactness matters).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "base/rng.h"
#include "image/distance.h"

namespace neuro {
namespace {

/// O(n²) reference EDT.
ImageF brute_force_edt(const ImageL& mask, double saturation) {
  ImageF out(mask.dims(), 0.0f, mask.spacing(), mask.origin());
  const IVec3 d = mask.dims();
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        double best = std::numeric_limits<double>::infinity();
        for (int kk = 0; kk < d.z; ++kk) {
          for (int jj = 0; jj < d.y; ++jj) {
            for (int ii = 0; ii < d.x; ++ii) {
              if (!mask(ii, jj, kk)) continue;
              const Vec3 a = mask.voxel_to_physical(i, j, k);
              const Vec3 b = mask.voxel_to_physical(ii, jj, kk);
              best = std::min(best, norm(a - b));
            }
          }
        }
        if (saturation > 0) best = std::min(best, saturation);
        out(i, j, k) = static_cast<float>(best);
      }
    }
  }
  return out;
}

TEST(EdtTest, SinglePointIsEuclidean) {
  ImageL mask({9, 9, 9}, 0);
  mask.at(4, 4, 4) = 1;
  const ImageF d = distance_from_mask(mask);
  EXPECT_FLOAT_EQ(d.at(4, 4, 4), 0.0f);
  EXPECT_NEAR(d.at(7, 4, 4), 3.0, 1e-5);
  EXPECT_NEAR(d.at(7, 8, 4), 5.0, 1e-5);  // 3-4-5 triangle
  EXPECT_NEAR(d.at(5, 5, 5), std::sqrt(3.0), 1e-5);
}

TEST(EdtTest, RespectsAnisotropicSpacing) {
  ImageL mask({9, 9, 9}, 0, {1.0, 2.0, 3.0});
  mask.at(4, 4, 4) = 1;
  const ImageF d = distance_from_mask(mask);
  EXPECT_NEAR(d.at(5, 4, 4), 1.0, 1e-5);
  EXPECT_NEAR(d.at(4, 5, 4), 2.0, 1e-5);
  EXPECT_NEAR(d.at(4, 4, 5), 3.0, 1e-5);
}

TEST(EdtTest, SaturationClamps) {
  ImageL mask({16, 4, 4}, 0);
  mask.at(0, 0, 0) = 1;
  const ImageF d = distance_from_mask(mask, 5.0);
  EXPECT_NEAR(d.at(15, 0, 0), 5.0, 1e-5);
  EXPECT_NEAR(d.at(3, 0, 0), 3.0, 1e-5);
}

TEST(EdtTest, AbsentClassSaturatesEverywhere) {
  ImageL mask({4, 4, 4}, 0);
  const ImageF d = distance_from_mask(mask, 7.0);
  for (const float v : d.data()) EXPECT_FLOAT_EQ(v, 7.0f);
}

TEST(EdtTest, LabelSelector) {
  ImageL labels({5, 5, 5}, 1);
  labels.at(2, 2, 2) = 3;
  const ImageF d3 = distance_to_label(labels, 3);
  EXPECT_FLOAT_EQ(d3.at(2, 2, 2), 0.0f);
  EXPECT_NEAR(d3.at(4, 2, 2), 2.0, 1e-5);
  const ImageF d1 = distance_to_label(labels, 1);
  EXPECT_FLOAT_EQ(d1.at(0, 0, 0), 0.0f);
  EXPECT_NEAR(d1.at(2, 2, 2), 1.0, 1e-5);  // nearest non-center voxel
}

TEST(SignedDistanceTest, NegativeInsidePositiveOutside) {
  ImageL labels({12, 12, 12}, 0);
  for (int k = 4; k < 8; ++k)
    for (int j = 4; j < 8; ++j)
      for (int i = 4; i < 8; ++i) labels.at(i, j, k) = 1;
  const ImageF sd = signed_distance_to_label(labels, 1, 100.0);
  EXPECT_LT(sd.at(5, 5, 5), 0.0f);   // interior
  EXPECT_GT(sd.at(0, 0, 0), 0.0f);   // exterior
  EXPECT_NEAR(sd.at(9, 5, 5), 2.0, 1e-4);   // 2 voxels outside
  EXPECT_NEAR(sd.at(5, 5, 6), -2.0, 1e-4);  // 2 voxels inside
}

class EdtPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EdtPropertyTest, MatchesBruteForceOnRandomVolumes) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const IVec3 dims{static_cast<int>(4 + rng.uniform_index(8)),
                   static_cast<int>(4 + rng.uniform_index(8)),
                   static_cast<int>(4 + rng.uniform_index(8))};
  const Vec3 spacing{rng.uniform(0.5, 3.0), rng.uniform(0.5, 3.0),
                     rng.uniform(0.5, 3.0)};
  ImageL mask(dims, 0, spacing);
  // Sparse features (~5%), guaranteed at least one.
  for (auto& v : mask.data()) v = rng.uniform() < 0.05 ? 1 : 0;
  mask.at(0, 0, 0) = 1;
  const double saturation = seed % 2 == 0 ? 0.0 : 6.0;

  const ImageF fast = distance_from_mask(mask, saturation);
  const ImageF ref = brute_force_edt(mask, saturation);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    ASSERT_NEAR(fast.data()[i], ref.data()[i], 1e-4)
        << "seed=" << seed << " voxel " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomVolumes, EdtPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace neuro

// Tests for the explicit dynamic FEM: mass lumping, stability estimation,
// energy behaviour, and convergence of dynamic relaxation to the static
// solution.
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "fem/deformation_solver.h"
#include "fem/dynamics.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"

namespace neuro::fem {
namespace {

mesh::TetMesh block(int n = 5, double spacing = 2.0) {
  ImageL labels({n, n, n}, 1, {spacing, spacing, spacing});
  mesh::MesherConfig cfg;
  cfg.stride = 2;
  return mesh::mesh_labeled_volume(labels, cfg);
}

TEST(LumpedMassTest, TotalMassIsDensityTimesVolume) {
  const mesh::TetMesh mesh = block();
  const double density = 2.5;
  const auto masses = lumped_masses(mesh, density);
  double total = 0;
  for (const double m : masses) total += m;
  EXPECT_NEAR(total, density * mesh::total_volume(mesh), 1e-9);
  for (const double m : masses) EXPECT_GT(m, 0.0);
  EXPECT_THROW(lumped_masses(mesh, 0.0), CheckError);
}

TEST(EigenvalueTest, ScalesWithStiffnessAndMass) {
  // λmax(M⁻¹K) scales linearly with E and inversely with density.
  const mesh::TetMesh mesh = block();
  const double l1 =
      max_generalized_eigenvalue(mesh, MaterialMap(Material{100.0, 0.3}), 1.0);
  const double l2 =
      max_generalized_eigenvalue(mesh, MaterialMap(Material{400.0, 0.3}), 1.0);
  const double l3 =
      max_generalized_eigenvalue(mesh, MaterialMap(Material{100.0, 0.3}), 4.0);
  EXPECT_NEAR(l2 / l1, 4.0, 0.1);
  EXPECT_NEAR(l3 / l1, 0.25, 0.01);
  EXPECT_GT(l1, 0.0);
}

TEST(DynamicsTest, DampedRelaxationConvergesToStaticSolution) {
  const mesh::TetMesh mesh = block();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = mesh.nodes[n];
    bcs.emplace_back(n, Vec3{0.0, 0.0, -0.04 * p.z});
  }
  const MaterialMap materials(Material{100.0, 0.3});

  DeformationSolveOptions static_opt;
  static_opt.solver.rtol = 1e-11;
  const auto static_solution = solve_deformation(mesh, materials, bcs, static_opt);
  ASSERT_TRUE(static_solution.stats.converged);

  DynamicsOptions dyn;
  dyn.density = 1.0;
  dyn.damping_alpha = 4.0;  // heavily damped → relaxes to equilibrium
  dyn.steps = 6000;
  dyn.bc_ramp_steps = 200;
  const auto dynamic = integrate_dynamics(mesh, materials, bcs, dyn);

  double max_diff = 0, max_vel = 0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    max_diff = std::max(
        max_diff, norm(dynamic.displacements[static_cast<std::size_t>(n)] -
                       static_solution.node_displacements[static_cast<std::size_t>(n)]));
    max_vel = std::max(max_vel, norm(dynamic.velocities[static_cast<std::size_t>(n)]));
  }
  const double scale = 0.04 * 8.0;  // max prescribed displacement
  EXPECT_LT(max_diff, 0.02 * scale);
  EXPECT_LT(max_vel, 1e-3);  // settled
  // Kinetic energy decayed to ~nothing.
  ASSERT_FALSE(dynamic.kinetic_energy.empty());
  EXPECT_LT(dynamic.kinetic_energy.back(),
            1e-3 * (*std::max_element(dynamic.kinetic_energy.begin(),
                                      dynamic.kinetic_energy.end()) + 1e-30));
}

TEST(DynamicsTest, UndampedEnergyStaysBounded) {
  // Semi-implicit Euler is symplectic: without damping the total energy
  // oscillates but does not blow up at a stable dt.
  const mesh::TetMesh mesh = block();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    if (mesh.nodes[n].z < 0.1) bcs.emplace_back(n, Vec3{});
  }
  DynamicsOptions dyn;
  dyn.density = 1.0;
  dyn.damping_alpha = 0.0;
  dyn.steps = 2000;
  dyn.body_force = {0, 0, -0.01};
  const auto result =
      integrate_dynamics(mesh, MaterialMap(Material{100.0, 0.3}), bcs, dyn);
  ASSERT_GT(result.kinetic_energy.size(), 20u);
  // Total energy after the initial transient stays within a factor of the
  // early total (no exponential growth).
  const std::size_t probe = 5;
  const double early = result.kinetic_energy[probe] + result.strain_energy[probe];
  double late_max = 0;
  for (std::size_t i = result.kinetic_energy.size() / 2;
       i < result.kinetic_energy.size(); ++i) {
    late_max = std::max(late_max, result.kinetic_energy[i] + result.strain_energy[i]);
  }
  EXPECT_LT(late_max, 3.0 * early + 1e-12);
}

TEST(DynamicsTest, AutoStepRespectsStabilityEstimate) {
  const mesh::TetMesh mesh = block();
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs{{mesh::NodeId{0}, Vec3{}}};
  DynamicsOptions dyn;
  dyn.steps = 5;
  const auto result =
      integrate_dynamics(mesh, MaterialMap(Material{100.0, 0.3}), bcs, dyn);
  EXPECT_GT(result.stable_dt_estimate, 0.0);
  EXPECT_NEAR(result.dt_used, 0.8 * result.stable_dt_estimate, 1e-12);
  EXPECT_EQ(result.steps_taken, 5);
}

TEST(DynamicsTest, PrescribedNodesFollowRamp) {
  const mesh::TetMesh mesh = block();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  const Vec3 shift{1.0, 0, 0};
  for (const auto n : surface.mesh_nodes) bcs.emplace_back(n, shift);
  DynamicsOptions dyn;
  dyn.density = 1.0;
  dyn.damping_alpha = 2.0;
  dyn.steps = 3000;
  dyn.bc_ramp_steps = 100;
  const auto result =
      integrate_dynamics(mesh, MaterialMap(Material{100.0, 0.3}), bcs, dyn);
  // After full relaxation with a uniformly translated boundary, the whole
  // block has translated (the dynamic analogue of the static patch test).
  for (const auto& u : result.displacements) {
    EXPECT_LT(norm(u - shift), 0.02);
  }
}

}  // namespace
}  // namespace neuro::fem

// Tests for the confusion matrix, backward-field composition, the analytic
// gravity-column FEM validation, and the bench scaling infrastructure.
#include <gtest/gtest.h>

#include <cmath>

#include "../bench/common.h"
#include "base/check.h"
#include "core/deformation_field.h"
#include "fem/deformation_solver.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "seg/knn.h"

namespace neuro {
namespace {

TEST(ConfusionMatrixTest, PerfectPrediction) {
  ImageL truth({4, 4, 4}, 1);
  truth.at(0, 0, 0) = 2;
  const seg::ConfusionMatrix cm(truth, truth);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 1.0);
  EXPECT_EQ(cm.count(1, 2), 0u);
  EXPECT_EQ(cm.count(2, 2), 1u);
}

TEST(ConfusionMatrixTest, CountsAndRates) {
  // 1-D strip: truth = [1 1 1 2 2 2], predicted = [1 1 2 2 2 1].
  ImageL truth({6, 1, 1}, 1), pred({6, 1, 1}, 1);
  for (int i = 3; i < 6; ++i) truth(i, 0, 0) = 2;
  pred.at(2, 0, 0) = 2;
  pred.at(3, 0, 0) = 2;
  pred.at(4, 0, 0) = 2;
  pred.at(5, 0, 0) = 1;
  const seg::ConfusionMatrix cm(pred, truth);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_EQ(cm.count(1, 2), 1u);
  EXPECT_EQ(cm.count(2, 2), 2u);
  EXPECT_EQ(cm.count(2, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.recall(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 4.0 / 6.0);
  ASSERT_EQ(cm.labels().size(), 2u);
}

TEST(ConfusionMatrixTest, AbsentLabelsAreNeutral) {
  ImageL a({2, 2, 2}, 1);
  const seg::ConfusionMatrix cm(a, a);
  EXPECT_DOUBLE_EQ(cm.recall(9), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(9), 1.0);
  EXPECT_EQ(cm.count(9, 1), 0u);
}

TEST(ComposeFieldsTest, ZeroPlusFieldIsField) {
  ImageV v1({8, 8, 8}, Vec3{1, -2, 0.5});
  ImageV zero({8, 8, 8});
  const ImageV out = core::compose_backward_fields(v1, zero);
  for (const auto& v : out.data()) {
    EXPECT_NEAR(norm(v - Vec3{1, -2, 0.5}), 0.0, 1e-12);
  }
}

TEST(ComposeFieldsTest, TranslationsAdd) {
  ImageV v1({8, 8, 8}, Vec3{2, 0, 0});
  ImageV v2({8, 8, 8}, Vec3{0, 3, 0});
  const ImageV out = core::compose_backward_fields(v1, v2);
  // Interior voxels (edge voxels clamp the sample of v1).
  EXPECT_NEAR(norm(out(4, 4, 4) - Vec3{2, 3, 0}), 0.0, 1e-9);
}

TEST(ComposeFieldsTest, MatchesTwoStepWarp) {
  // Warping through the composed field ≈ warping through v1 then v2.
  ImageF img({16, 16, 16});
  for (int k = 0; k < 16; ++k)
    for (int j = 0; j < 16; ++j)
      for (int i = 0; i < 16; ++i)
        img(i, j, k) = static_cast<float>(std::sin(0.5 * i) * std::cos(0.4 * j) + 0.2 * k);
  ImageV v1({16, 16, 16}), v2({16, 16, 16});
  for (int k = 0; k < 16; ++k) {
    for (int j = 0; j < 16; ++j) {
      for (int i = 0; i < 16; ++i) {
        const double w = std::exp(-0.05 * norm2(Vec3(i - 8, j - 8, k - 8)));
        v1(i, j, k) = Vec3{1.0 * w, 0, 0.5 * w};
        v2(i, j, k) = Vec3{0, -0.8 * w, 0};
      }
    }
  }
  const ImageF two_step = core::warp_backward(core::warp_backward(img, v1), v2);
  const ImageF one_step = core::warp_backward(img, core::compose_backward_fields(v1, v2));
  double worst = 0;
  for (int k = 3; k < 13; ++k) {
    for (int j = 3; j < 13; ++j) {
      for (int i = 3; i < 13; ++i) {
        worst = std::max(worst, std::abs(static_cast<double>(two_step(i, j, k)) -
                                         one_step(i, j, k)));
      }
    }
  }
  EXPECT_LT(worst, 0.05);  // differ only by double-interpolation smoothing
}

TEST(GravityColumnTest, MatchesAnalyticSelfWeightSolution) {
  // A column clamped at the bottom under its own weight, ν = 0 (no lateral
  // coupling): exact solution u_z(z) = (f/E)(L z − z²/2).
  ImageL labels({5, 5, 13}, 1, {2, 2, 2});
  mesh::MesherConfig cfg;
  cfg.stride = 2;
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, cfg);
  const double L = 24.0;  // column height (z in [0, 24])

  std::vector<std::pair<mesh::NodeId, Vec3>> clamps;
  for (const mesh::NodeId n : mesh.node_ids()) {
    if (mesh.nodes[n].z < 1e-9) clamps.emplace_back(n, Vec3{});
  }
  ASSERT_FALSE(clamps.empty());

  const double E = 100.0, f = -0.5;  // force density (downward)
  fem::DeformationSolveOptions opt;
  opt.body_force = {0, 0, f};
  opt.solver.rtol = 1e-11;
  const auto result =
      fem::solve_deformation(mesh, fem::MaterialMap(fem::Material{E, 0.0}), clamps, opt);
  ASSERT_TRUE(result.stats.converged);

  for (const mesh::NodeId n : mesh.node_ids()) {
    const double z = mesh.nodes[n].z;
    const double expected = (f / E) * (L * z - z * z / 2.0);
    EXPECT_NEAR(result.node_displacements[n.index()].z, expected,
                0.012 * std::abs(f / E * L * L / 2) + 1e-9)
        << "node " << n << " z=" << z;
    // Lateral motion at nu = 0 is purely parasitic discretization error
    // (the 5-tet lattice is not mirror-symmetric): tiny vs. the sag scale.
    EXPECT_NEAR(result.node_displacements[n.index()].x, 0.0, 0.01);
  }
}

TEST(BenchInfraTest, BrainProblemHitsEquationTarget) {
  const bench::BrainProblem problem = bench::make_brain_problem(9000);
  EXPECT_NEAR(problem.num_equations, 9000, 3000);
  EXPECT_FALSE(problem.prescribed.empty());
  // Prescribed displacements follow the analytic shift (downward at the top).
  double min_z = 0;
  for (const auto& [node, u] : problem.prescribed) min_z = std::min(min_z, u.z);
  EXPECT_LT(min_z, -4.0);
}

TEST(BenchInfraTest, PredictedTimesDecreaseWithCpus) {
  const bench::BrainProblem problem = bench::make_brain_problem(9000);
  const perf::PlatformModel smp = perf::ultra_hpc_6000();
  const auto r1 = bench::run_scaling_point(problem, smp, 1);
  const auto r4 = bench::run_scaling_point(problem, smp, 4);
  EXPECT_LT(r4.assemble_s, r1.assemble_s);
  EXPECT_LT(r4.solve_s, r1.solve_s);
  EXPECT_GE(r4.assemble_imbalance, 1.0);
  EXPECT_GT(r4.iterations, 0);
}

}  // namespace
}  // namespace neuro

// Tests for the linear-elastic FEM: material law, element stiffness
// (symmetry, rigid-body null space), assembly (patch test), boundary-condition
// substitution, and the parallel deformation solver (serial/parallel
// agreement, partitioner variants).
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "base/rng.h"
#include "fem/assembly.h"
#include "fem/boundary.h"
#include "fem/deformation_solver.h"
#include "fem/element.h"
#include "fem/material.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "par/communicator.h"

namespace neuro::fem {
namespace {

TEST(MaterialTest, ElasticityMatrixStructure) {
  const Material m{1000.0, 0.3};
  const auto D = elasticity_matrix(m);
  // Symmetry.
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 6; ++c) {
      EXPECT_DOUBLE_EQ(D[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)],
                       D[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)]);
    }
  }
  // Known entries: D00 = E(1-nu)/((1+nu)(1-2nu)), shear G = E/2(1+nu).
  EXPECT_NEAR(D[0][0], 1000.0 * 0.7 / (1.3 * 0.4), 1e-9);
  EXPECT_NEAR(D[3][3], 1000.0 / 2.6, 1e-9);
  // Normal-shear decoupling for isotropy.
  EXPECT_DOUBLE_EQ(D[0][3], 0.0);
  EXPECT_DOUBLE_EQ(D[4][5], 0.0);
}

TEST(MaterialTest, RejectsInvalidParameters) {
  EXPECT_THROW(static_cast<void>(elasticity_matrix(Material{-1.0, 0.3})), CheckError);
  EXPECT_THROW(static_cast<void>(elasticity_matrix(Material{1000.0, 0.5})), CheckError);
  EXPECT_THROW(static_cast<void>(elasticity_matrix(Material{1000.0, -1.0})), CheckError);
}

TEST(MaterialTest, MapDefaultsAndOverrides) {
  MaterialMap map(Material{100.0, 0.4});
  map.set(3, Material{999.0, 0.2});
  EXPECT_DOUBLE_EQ(map.for_label(3).youngs_modulus, 999.0);
  EXPECT_DOUBLE_EQ(map.for_label(7).youngs_modulus, 100.0);
  // Heterogeneous preset: falx stiffer than brain.
  const MaterialMap het = MaterialMap::heterogeneous_brain();
  EXPECT_GT(het.for_label(5).youngs_modulus, het.for_label(3).youngs_modulus);
}

TetElement unit_element() {
  return TetElement::from_vertices({0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1});
}

TEST(ElementTest, VolumeAndGradients) {
  const TetElement e = unit_element();
  EXPECT_NEAR(e.volume, 1.0 / 6.0, 1e-12);
  // Shape gradients sum to zero (partition of unity).
  const Vec3 sum = e.grad_n[0] + e.grad_n[1] + e.grad_n[2] + e.grad_n[3];
  EXPECT_NEAR(norm(sum), 0.0, 1e-12);
  // ∇N_1 = x̂ for this element.
  EXPECT_NEAR(e.grad_n[1].x, 1.0, 1e-12);
  EXPECT_NEAR(e.grad_n[1].y, 0.0, 1e-12);
}

TEST(ElementTest, RejectsInvertedTet) {
  EXPECT_THROW(static_cast<void>(TetElement::from_vertices(
                   {0, 0, 0}, {0, 1, 0}, {1, 0, 0}, {0, 0, 1})),
               CheckError);
}

TEST(ElementTest, StiffnessIsSymmetric) {
  const TetElement e = TetElement::from_vertices({0, 0, 0}, {2, 0.1, 0}, {0.3, 1.7, 0},
                                                 {0.2, 0.1, 1.4});
  const auto Ke = e.stiffness(elasticity_matrix(Material{3000, 0.45}));
  for (int r = 0; r < 12; ++r) {
    for (int c = 0; c < 12; ++c) {
      EXPECT_NEAR(Ke[static_cast<std::size_t>(12 * r + c)],
                  Ke[static_cast<std::size_t>(12 * c + r)], 1e-8);
    }
  }
}

TEST(ElementTest, RigidBodyModesProduceNoForce) {
  // Translations and infinitesimal rotations are in the stiffness null space.
  const TetElement e = TetElement::from_vertices({0, 0, 0}, {1.5, 0.2, 0},
                                                 {0.1, 1.2, 0.1}, {0.3, 0.2, 1.1});
  const std::array<Vec3, 4> verts{Vec3{0, 0, 0}, Vec3{1.5, 0.2, 0},
                                  Vec3{0.1, 1.2, 0.1}, Vec3{0.3, 0.2, 1.1}};
  const auto Ke = e.stiffness(elasticity_matrix(Material{1000, 0.3}));

  auto force_norm = [&](const std::array<double, 12>& u) {
    double max_f = 0;
    for (int r = 0; r < 12; ++r) {
      double f = 0;
      for (int c = 0; c < 12; ++c) {
        f += Ke[static_cast<std::size_t>(12 * r + c)] * u[static_cast<std::size_t>(c)];
      }
      max_f = std::max(max_f, std::abs(f));
    }
    return max_f;
  };

  // Translation x̂.
  std::array<double, 12> u{};
  for (int n = 0; n < 4; ++n) u[static_cast<std::size_t>(3 * n)] = 1.0;
  EXPECT_NEAR(force_norm(u), 0.0, 1e-9);

  // Infinitesimal rotation about ẑ: u = ω × x with ω = ẑ.
  for (int n = 0; n < 4; ++n) {
    u[static_cast<std::size_t>(3 * n + 0)] = -verts[static_cast<std::size_t>(n)].y;
    u[static_cast<std::size_t>(3 * n + 1)] = verts[static_cast<std::size_t>(n)].x;
    u[static_cast<std::size_t>(3 * n + 2)] = 0.0;
  }
  EXPECT_NEAR(force_norm(u), 0.0, 1e-8);
}

TEST(ElementTest, StiffnessIsPositiveSemiDefinite) {
  const TetElement e = TetElement::from_vertices({0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                                                 {0, 0, 1});
  const auto Ke = e.stiffness(elasticity_matrix(Material{2000, 0.35}));
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<double, 12> u{};
    for (auto& v : u) v = rng.uniform(-1, 1);
    double quad = 0;
    for (int r = 0; r < 12; ++r) {
      for (int c = 0; c < 12; ++c) {
        quad += u[static_cast<std::size_t>(r)] *
                Ke[static_cast<std::size_t>(12 * r + c)] *
                u[static_cast<std::size_t>(c)];
      }
    }
    EXPECT_GE(quad, -1e-9);
  }
}

TEST(ElementTest, BodyForceLoadSplitsEvenly) {
  const TetElement e = unit_element();
  const auto load = e.body_force_load({0, 0, -9.8});
  for (int n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(load[static_cast<std::size_t>(3 * n + 2)], e.volume / 4 * -9.8);
    EXPECT_DOUBLE_EQ(load[static_cast<std::size_t>(3 * n)], 0.0);
  }
}

/// A small solid block mesh for system-level tests.
mesh::TetMesh block_mesh(int n = 7, double spacing = 1.0, int stride = 2) {
  ImageL labels({n, n, n}, 1, {spacing, spacing, spacing});
  mesh::MesherConfig cfg;
  cfg.stride = stride;
  return mesh::mesh_labeled_volume(labels, cfg);
}

TEST(AssemblyTest, GlobalMatrixIsSymmetricWithZeroRowSums) {
  const mesh::TetMesh mesh = block_mesh();
  const MeshTopology topo = MeshTopology::build(mesh);
  const MaterialMap materials = MaterialMap::homogeneous_brain();
  const mesh::Partition part = mesh::partition_node_balanced(mesh.num_nodes(), 1);

  par::run_spmd(1, [&](par::Communicator& comm) {
    const LocalSystem sys = assemble_elasticity(mesh, topo, materials, part, {}, comm);
    const int n = 3 * mesh.num_nodes();
    // Symmetry over the stored pattern.
    for (int r = 0; r < n; r += 7) {
      for (int p = sys.A.row_ptr()[static_cast<std::size_t>(r)];
           p < sys.A.row_ptr()[static_cast<std::size_t>(r) + 1]; ++p) {
        const int c = sys.A.global_cols()[static_cast<std::size_t>(p)];
        EXPECT_NEAR(sys.A.values()[static_cast<std::size_t>(p)],
                    sys.A.value_at(solver::GlobalRow{c}, solver::GlobalRow{r}),
                    1e-8);
      }
    }
    // Row sums vanish (translation null space) for rows whose node has all
    // its neighbours in the matrix — true for every row here.
    for (int r = 0; r < n; r += 5) {
      double sum = 0;
      for (int p = sys.A.row_ptr()[static_cast<std::size_t>(r)];
           p < sys.A.row_ptr()[static_cast<std::size_t>(r) + 1]; ++p) {
        // Only same-component columns contribute to the translation mode.
        const int c = sys.A.global_cols()[static_cast<std::size_t>(p)];
        if (c % 3 == r % 3) sum += sys.A.values()[static_cast<std::size_t>(p)];
      }
      EXPECT_NEAR(sum, 0.0, 1e-7);
    }
  });
}

TEST(AssemblyTest, ParallelRowsMatchSerial) {
  const mesh::TetMesh mesh = block_mesh();
  const MeshTopology topo = MeshTopology::build(mesh);
  const MaterialMap materials = MaterialMap::homogeneous_brain();

  // Serial reference rows.
  std::vector<double> ref_values;
  std::vector<int> ref_cols;
  par::run_spmd(1, [&](par::Communicator& comm) {
    const auto part = mesh::partition_node_balanced(mesh.num_nodes(), 1);
    const LocalSystem sys = assemble_elasticity(mesh, topo, materials, part, {}, comm);
    ref_values = sys.A.values();
    ref_cols = sys.A.global_cols();
  });

  for (const int P : {2, 4}) {
    const auto part = mesh::partition_node_balanced(mesh.num_nodes(), P);
    par::run_spmd(P, [&](par::Communicator& comm) {
      const LocalSystem sys =
          assemble_elasticity(mesh, topo, materials, part, {}, comm);
      // Compare each owned row against the serial slice.
      const auto [rb, re] = sys.A.range();
      int serial_p = 0;
      // Locate the serial offset of row rb: rows are in the same order, and
      // the serial matrix owns all rows, so walk its row_ptr.
      par::run_spmd(1, [&](par::Communicator& c1) {
        const auto p1 = mesh::partition_node_balanced(mesh.num_nodes(), 1);
        const LocalSystem ref = assemble_elasticity(mesh, topo, materials, p1, {}, c1);
        serial_p = ref.A.row_ptr()[rb.index()];
      });
      for (std::size_t p = 0; p < sys.A.values().size(); ++p) {
        ASSERT_EQ(sys.A.global_cols()[p],
                  ref_cols[static_cast<std::size_t>(serial_p) + p]);
        ASSERT_NEAR(sys.A.values()[p],
                    ref_values[static_cast<std::size_t>(serial_p) + p], 1e-9);
      }
    });
  }
}

TEST(DirichletSetTest, BuildQueryAndCount) {
  DirichletSet bc = DirichletSet::from_node_displacements(
      {{mesh::NodeId{2}, Vec3{1, 2, 3}}, {mesh::NodeId{0}, Vec3{0, 0, 0}}});
  EXPECT_EQ(bc.size(), 6u);
  EXPECT_TRUE(bc.contains(DofId{6}));
  EXPECT_TRUE(bc.contains(DofId{0}));
  EXPECT_FALSE(bc.contains(DofId{3}));
  EXPECT_DOUBLE_EQ(bc.value_of(DofId{7}), 2.0);  // node 2, y component
  EXPECT_EQ(bc.count_in_range(DofId{0}, DofId{3}), 3);
  EXPECT_EQ(bc.count_in_range(DofId{3}, DofId{6}), 0);
  EXPECT_THROW(static_cast<void>(bc.value_of(DofId{3})), CheckError);
}

TEST(DirichletSetTest, ConflictingValuesRejected) {
  DirichletSet bc;
  bc.add(DofId{5}, 1.0);
  bc.add(DofId{5}, 2.0);
  EXPECT_THROW(bc.finalize(), CheckError);
}

TEST(DirichletSetTest, DuplicateConsistentValuesDeduplicate) {
  DirichletSet bc;
  bc.add(DofId{5}, 1.0);
  bc.add(DofId{5}, 1.0);
  bc.finalize();
  EXPECT_EQ(bc.size(), 1u);
}

TEST(SolveTest, UniformTranslationBcGivesUniformField) {
  // Prescribing the same displacement on the whole boundary must translate
  // the entire block rigidly (elasticity patch test, order 0).
  const mesh::TetMesh mesh = block_mesh();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  const Vec3 shift{0.3, -0.2, 0.5};
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) bcs.emplace_back(n, shift);

  DeformationSolveOptions opt;
  opt.solver.rtol = 1e-10;
  const DeformationResult result =
      solve_deformation(mesh, MaterialMap::homogeneous_brain(), bcs, opt);
  EXPECT_TRUE(result.stats.converged);
  for (const auto& u : result.node_displacements) {
    EXPECT_NEAR(norm(u - shift), 0.0, 1e-6);
  }
}

TEST(SolveTest, LinearFieldReproducedExactly) {
  // Patch test, order 1: linear tets reproduce any affine displacement field
  // exactly when it is prescribed on the boundary.
  const mesh::TetMesh mesh = block_mesh(7, 2.0);
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  auto affine = [](const Vec3& p) {
    return Vec3{0.01 * p.x + 0.02 * p.y, -0.015 * p.y + 0.005 * p.z, 0.02 * p.z};
  };
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    bcs.emplace_back(n, affine(mesh.nodes[n]));
  }
  DeformationSolveOptions opt;
  opt.solver.rtol = 1e-12;
  const DeformationResult result =
      solve_deformation(mesh, MaterialMap::homogeneous_brain(), bcs, opt);
  EXPECT_TRUE(result.stats.converged);
  for (const mesh::NodeId n : mesh.node_ids()) {
    EXPECT_NEAR(norm(result.node_displacements[n.index()] - affine(mesh.nodes[n])),
                0.0, 1e-5);
  }
}

class SolveRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(SolveRankSweep, ParallelMatchesSerial) {
  const int P = GetParam();
  const mesh::TetMesh mesh = block_mesh();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  // A non-trivial boundary field: squeeze in z, bulge in x.
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = mesh.nodes[n];
    bcs.emplace_back(n, Vec3{0.02 * p.z, 0.0, -0.05 * p.z});
  }
  DeformationSolveOptions opt;
  opt.solver.rtol = 1e-11;
  const DeformationResult serial =
      solve_deformation(mesh, MaterialMap::homogeneous_brain(), bcs, opt);

  opt.nranks = P;
  const DeformationResult parallel =
      solve_deformation(mesh, MaterialMap::homogeneous_brain(), bcs, opt);
  EXPECT_TRUE(parallel.stats.converged);
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    EXPECT_NEAR(norm(parallel.node_displacements[static_cast<std::size_t>(n)] -
                     serial.node_displacements[static_cast<std::size_t>(n)]),
                0.0, 1e-6)
        << "P=" << P << " node " << n;
  }
  // Work records exist for all phases and ranks.
  EXPECT_EQ(parallel.work.phase("assemble").size(), static_cast<std::size_t>(P));
  EXPECT_EQ(parallel.work.phase("solve").size(), static_cast<std::size_t>(P));
  for (const auto& w : parallel.work.phase("assemble")) EXPECT_GT(w.flops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SolveRankSweep, ::testing::Values(2, 3, 5, 8));

TEST(SolveTest, AllPartitionKindsAgree) {
  const mesh::TetMesh mesh = block_mesh();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    bcs.emplace_back(n, Vec3{0.0, 0.0, 0.01 * mesh.nodes[n].x});
  }
  DeformationSolveOptions opt;
  opt.nranks = 4;
  opt.solver.rtol = 1e-11;

  std::vector<std::vector<Vec3>> solutions;
  for (const auto kind :
       {PartitionKind::kNodeBalanced, PartitionKind::kConnectivityBalanced,
        PartitionKind::kFreeNodeBalanced}) {
    opt.partition = kind;
    const auto result =
        solve_deformation(mesh, MaterialMap::homogeneous_brain(), bcs, opt);
    EXPECT_TRUE(result.stats.converged);
    solutions.push_back(result.node_displacements);
  }
  for (std::size_t s = 1; s < solutions.size(); ++s) {
    for (std::size_t n = 0; n < solutions[0].size(); ++n) {
      EXPECT_NEAR(norm(solutions[s][n] - solutions[0][n]), 0.0, 1e-6);
    }
  }
}

TEST(SolveTest, KrylovVariantsAgree) {
  const mesh::TetMesh mesh = block_mesh();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    bcs.emplace_back(n, Vec3{0.01 * mesh.nodes[n].y, 0.0, 0.0});
  }
  DeformationSolveOptions opt;
  opt.solver.rtol = 1e-11;

  std::vector<std::vector<Vec3>> solutions;
  for (const auto k : {KrylovKind::kGmres, KrylovKind::kCg, KrylovKind::kBicgstab}) {
    opt.krylov = k;
    const auto result =
        solve_deformation(mesh, MaterialMap::homogeneous_brain(), bcs, opt);
    EXPECT_TRUE(result.stats.converged);
    solutions.push_back(result.node_displacements);
  }
  for (std::size_t s = 1; s < solutions.size(); ++s) {
    for (std::size_t n = 0; n < solutions[0].size(); ++n) {
      EXPECT_NEAR(norm(solutions[s][n] - solutions[0][n]), 0.0, 1e-5);
    }
  }
}

TEST(SolveTest, HeterogeneousMaterialsChangeInterior) {
  // Same BCs, different material map ⇒ different interior solution.
  ImageL labels({7, 7, 7}, 3, {2, 2, 2});
  // Stiff slab (falx label) through the middle — two voxels thick so the
  // stride-2 majority labeling keeps it.
  for (int k = 0; k < 7; ++k) {
    for (int j = 0; j < 7; ++j) {
      labels(3, j, k) = 5;
      labels(4, j, k) = 5;
    }
  }
  mesh::MesherConfig mcfg;
  mcfg.stride = 2;
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, mcfg);
  const auto surface = mesh::extract_boundary_surface(mesh, {3, 5});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = mesh.nodes[n];
    bcs.emplace_back(n, Vec3{0, 0, 0.03 * p.x});
  }
  DeformationSolveOptions opt;
  opt.solver.rtol = 1e-11;
  const auto homo =
      solve_deformation(mesh, MaterialMap::homogeneous_brain(), bcs, opt);
  const auto het =
      solve_deformation(mesh, MaterialMap::heterogeneous_brain(), bcs, opt);
  double max_diff = 0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    max_diff = std::max(max_diff,
                        norm(homo.node_displacements[static_cast<std::size_t>(n)] -
                             het.node_displacements[static_cast<std::size_t>(n)]));
  }
  EXPECT_GT(max_diff, 1e-4);
}

TEST(SolveTest, FixedDofAccountingMatchesBc) {
  const mesh::TetMesh mesh = block_mesh();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) bcs.emplace_back(n, Vec3{});
  DeformationSolveOptions opt;
  opt.nranks = 3;
  const auto result =
      solve_deformation(mesh, MaterialMap::homogeneous_brain(), bcs, opt);
  EXPECT_EQ(result.num_fixed_dofs, 3 * surface.num_vertices());
  EXPECT_EQ(result.num_equations, 3 * mesh.num_nodes());
  int per_rank_sum = 0;
  for (const int f : result.fixed_dofs_per_rank) per_rank_sum += f;
  EXPECT_EQ(per_rank_sum, result.num_fixed_dofs);
}

TEST(SolveTest, EmptyBcRejected) {
  const mesh::TetMesh mesh = block_mesh();
  EXPECT_THROW(
      solve_deformation(mesh, MaterialMap::homogeneous_brain(), {}, {}),
      CheckError);
}

}  // namespace
}  // namespace neuro::fem

// Tests for the flight recorder (src/obs/flight_recorder.*) and the
// tracer's ring mode: bounded last-N retention, the writer/dumper
// quiescence handshake, byte-identical post-mortem bundles for seeded
// multi-rank workloads, trigger plumbing (status mapping, check-failure
// hook, dump rate limiting), and residual-history extraction.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/check.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neuro::obs {
namespace {

constexpr bool kObsCompiledIn =
#ifdef NEURO_OBS_DISABLED
    false;
#else
    true;
#endif

std::atomic<int> g_hook_calls{0};

void counting_hook(const char* message) {
  (void)message;
  g_hook_calls.fetch_add(1, std::memory_order_relaxed);
}

TEST(RingMode, WrapRetainsTheLastN) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with NEURO_OBS=OFF";
  Tracer::Options options;
  options.ring_capacity = 8;
  Tracer tracer(true, options);
  for (int i = 0; i < 20; ++i) {
    tracer.span("s" + std::to_string(i)).close();
  }
  const Tracer::RingDump dump = tracer.dump_ring();
  EXPECT_EQ(dump.ring_capacity, 8u);
  ASSERT_EQ(dump.streams.size(), 1u);
  EXPECT_EQ(dump.streams[0].recorded, 20u);
  EXPECT_EQ(dump.streams[0].retained, 8u);
  EXPECT_EQ(dump.streams[0].wrapped, 12u);
  EXPECT_EQ(dump.streams[0].dropped, 0u);
  ASSERT_EQ(dump.events.size(), 8u);
  // The ring keeps the *last* N in recording order: s12..s19.
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    EXPECT_EQ(dump.events[i].name, "s" + std::to_string(12 + i)) << i;
    EXPECT_EQ(dump.events[i].seq, 12 + i);
  }
}

TEST(RingMode, LegacyPathUnaffectedWhenRingIsZero) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with NEURO_OBS=OFF";
  Tracer::Options options;
  options.max_events_per_stream = 4;
  Tracer tracer(true, options);
  for (int i = 0; i < 10; ++i) tracer.span("s").close();
  EXPECT_EQ(tracer.event_count(), 4u);   // grow-then-cap, oldest kept
  EXPECT_EQ(tracer.dropped_count(), 6u);
  // A ring dump of a legacy-mode tracer reports what the cap retained.
  const Tracer::RingDump dump = tracer.dump_ring();
  ASSERT_EQ(dump.streams.size(), 1u);
  EXPECT_EQ(dump.streams[0].retained, 4u);
}

/// Deterministic multi-rank workload: each rank records the same seeded
/// sequence of spans and counters into its own stream.
void record_rank_workload(Tracer& tracer, int rank, int steps) {
  ScopedThreadRank scoped(rank);
  for (int i = 0; i < steps; ++i) {
    {
      Span span = tracer.span("work");
      span.attr("step", i);
      span.attr("rank_seed", rank * 1000 + i);
    }
    if (i % 3 == 0) {
      Span it = tracer.span("gmres.iteration");
      it.attr("iteration", i / 3);
      it.attr("residual", 1.0 / (1.0 + i));
    }
    tracer.counter("work.progress", static_cast<double>(i));
  }
}

std::string redacted_bundle_for(int nranks, int steps) {
  Tracer::Options options;
  options.ring_capacity = 2048;
  Tracer tracer(true, options);
  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    ranks.emplace_back(record_rank_workload, std::ref(tracer), r, steps);
  }
  for (auto& t : ranks) t.join();

  FlightRecorder recorder_local(tracer);
  FlightRecorder::Options ropts;
  ropts.redact_timing = true;
  recorder_local.adopt_sink(ropts);
  DumpContext context;
  context.detail = "determinism probe";
  context.attr("seed", std::int64_t{7});
  std::ostringstream os;
  recorder_local.write_bundle(os, DumpTrigger::kManual, context);
  return os.str();
}

TEST(Bundle, ByteIdenticalAcrossRunsAndRankCounts) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with NEURO_OBS=OFF";
  // The ISSUE 10 determinism contract: same seed + same cap -> the redacted
  // bundle is byte-identical across two runs, at 1, 2 and 4 ranks. Timing is
  // the only sanctioned nondeterminism and redact_timing removes it.
  for (const int nranks : {1, 2, 4}) {
    const std::string first = redacted_bundle_for(nranks, 40);
    const std::string second = redacted_bundle_for(nranks, 40);
    EXPECT_EQ(first, second) << "nranks=" << nranks;
    EXPECT_NE(first.find("\"schema\":\"neuro.postmortem.v1\""),
              std::string::npos);
    EXPECT_NE(first.find("\"residual_history\":["), std::string::npos);
    EXPECT_EQ(first.find("ts_us"), std::string::npos)
        << "redacted bundle leaked timing";
    // Every rank's stream is covered.
    for (int r = 0; r < nranks; ++r) {
      EXPECT_NE(first.find("{\"rank\":" + std::to_string(r) + ",\"recorded\""),
                std::string::npos)
          << "nranks=" << nranks << " missing rank " << r;
    }
  }
}

TEST(Bundle, ResidualHistoryIsExtractedInIterationOrder) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with NEURO_OBS=OFF";
  Tracer::Options options;
  options.ring_capacity = 64;
  Tracer tracer(true, options);
  {
    ScopedThreadRank scoped(0);
    for (int i = 0; i < 3; ++i) {
      Span it = tracer.span("cg.iteration");
      it.attr("iteration", i);
      it.attr("residual", 0.5 / (1 << i));  // dyadic: prints exactly
    }
    tracer.span("cg.setup").close();  // no iteration/residual attrs: ignored
  }
  FlightRecorder recorder_local(tracer);
  recorder_local.adopt_sink({});
  std::ostringstream os;
  recorder_local.write_bundle(os, DumpTrigger::kWatchdog, {});
  const std::string bundle = os.str();
  const std::size_t first = bundle.find(
      R"({"solver":"cg","rank":0,"iteration":0,"residual":0.5})");
  const std::size_t second = bundle.find(
      R"({"solver":"cg","rank":0,"iteration":1,"residual":0.25})");
  const std::size_t third =
      bundle.find(R"({"solver":"cg","rank":0,"iteration":2,)");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  ASSERT_NE(third, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(second, third);
  EXPECT_EQ(bundle.find("cg.setup\",\"residual"), std::string::npos);
}

TEST(DumpQuiescence, DumpWhileSixteenRanksRecord) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with NEURO_OBS=OFF";
  // The quiescence contract: a dump taken while 16 rank threads record
  // must never observe a half-written slot, and the stats it reports must
  // be self-consistent (sum of retained == merged event count). Writers
  // shed events (counted as dropped) instead of blocking. The TSan CI job
  // runs this test, which is the real teeth of the contract.
  Tracer::Options options;
  options.ring_capacity = 256;
  Tracer tracer(true, options);
  std::atomic<bool> stop{false};
  std::vector<std::thread> ranks;
  for (int r = 0; r < 16; ++r) {
    ranks.emplace_back([&tracer, &stop, r] {
      ScopedThreadRank scoped(r);
      std::int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Span span = tracer.span("spin");
        span.attr("i", i++);
      }
    });
  }
  for (int pass = 0; pass < 8; ++pass) {
    const Tracer::RingDump dump = tracer.dump_ring();
    std::uint64_t total_retained = 0;
    for (const auto& s : dump.streams) {
      EXPECT_LE(s.retained, 256u);
      EXPECT_GE(s.recorded, s.retained);
      total_retained += s.retained;
    }
    EXPECT_EQ(dump.events.size(), total_retained) << "pass " << pass;
    for (const auto& e : dump.events) {
      EXPECT_EQ(e.name, "spin");  // a torn slot would fail here
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : ranks) t.join();
}

TEST(FlightRecorderTest, DumpWritesValidatedBundleAndRateLimits) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with NEURO_OBS=OFF";
  Tracer tracer(false);
  FlightRecorder recorder_local(tracer);
  FlightRecorder::Options options;
  options.ring_capacity = 1024;
  options.dump_dir = ::testing::TempDir() + "flight_recorder_dumps";
  options.max_dumps = 2;
  recorder_local.arm(options);
  EXPECT_TRUE(recorder_local.armed());
  EXPECT_EQ(tracer.ring_capacity(), 1024u);  // arm flips the tracer to ring mode

  tracer.span("solve").close();
  DumpContext context;
  context.detail = "watchdog fired";
  context.attr("residual", 0.5);
  const std::string path =
      recorder_local.dump(DumpTrigger::kWatchdog, context);
  ASSERT_FALSE(path.empty());

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string bundle = buf.str();
  EXPECT_NE(bundle.find("\"schema\":\"neuro.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(bundle.find("\"kind\":\"watchdog\""), std::string::npos);
  EXPECT_NE(bundle.find("watchdog fired"), std::string::npos);
  // The trigger recorded itself into the ring before the dump copied it.
  EXPECT_NE(bundle.find("recorder.trigger"), std::string::npos);
  EXPECT_NE(bundle.find("\"name\":\"solve\""), std::string::npos);

  // Rate limit: max_dumps bundles, then triggers only count.
  EXPECT_FALSE(recorder_local.dump(DumpTrigger::kWatchdog, context).empty());
  EXPECT_TRUE(recorder_local.dump(DumpTrigger::kWatchdog, context).empty());
}

TEST(FlightRecorderTest, UnarmedDumpStillCountsTriggers) {
  Tracer tracer(false);
  FlightRecorder recorder_local(tracer);
  const std::int64_t before =
      metrics().counter("obs.recorder.triggers.deadline_miss").value();
  EXPECT_TRUE(recorder_local.dump(DumpTrigger::kDeadlineMiss, {}).empty());
  EXPECT_EQ(metrics().counter("obs.recorder.triggers.deadline_miss").value(),
            before + 1);
}

TEST(FlightRecorderTest, TriggerMapsFromStatusCodes) {
  EXPECT_EQ(dump_trigger_from_status(base::StatusCode::kCommFault,
                                     DumpTrigger::kManual),
            DumpTrigger::kCommFault);
  EXPECT_EQ(dump_trigger_from_status(base::StatusCode::kUnavailable,
                                     DumpTrigger::kManual),
            DumpTrigger::kCommFault);
  EXPECT_EQ(dump_trigger_from_status(base::StatusCode::kDeadlineExceeded,
                                     DumpTrigger::kManual),
            DumpTrigger::kDeadlineMiss);
  EXPECT_EQ(dump_trigger_from_status(base::StatusCode::kSolverStagnated,
                                     DumpTrigger::kManual),
            DumpTrigger::kWatchdog);
  EXPECT_EQ(dump_trigger_from_status(base::StatusCode::kValidationFailed,
                                     DumpTrigger::kDegradation),
            DumpTrigger::kDegradation);
}

TEST(CheckFailureHook, FiresOnceBeforeTheThrow) {
  CheckFailureHook previous = set_check_failure_hook(&counting_hook);
  g_hook_calls.store(0);
  bool threw = false;
  try {
    NEURO_REQUIRE(false, "flight recorder hook probe");
  } catch (const CheckError& error) {
    threw = true;
    EXPECT_NE(std::string(error.what()).find("hook probe"), std::string::npos);
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(g_hook_calls.load(), 1);
  set_check_failure_hook(previous);
}

TEST(PostmortemEnv, RingCapacityIsClampedAndArmingIsExplicit) {
  const char* saved_dir = std::getenv("NEURO_POSTMORTEM_DIR");
  const std::string saved_dir_value = saved_dir != nullptr ? saved_dir : "";
  const char* saved_ring = std::getenv("NEURO_POSTMORTEM_RING");
  const std::string saved_ring_value = saved_ring != nullptr ? saved_ring : "";

  ::unsetenv("NEURO_POSTMORTEM_DIR");
  EXPECT_FALSE(postmortem_enabled_by_env());
  ::setenv("NEURO_POSTMORTEM_DIR", "", 1);
  EXPECT_FALSE(postmortem_enabled_by_env());
  ::setenv("NEURO_POSTMORTEM_DIR", "/tmp/x", 1);
  EXPECT_TRUE(postmortem_enabled_by_env());

  ::unsetenv("NEURO_POSTMORTEM_RING");
  EXPECT_EQ(postmortem_ring_capacity_from_env(), 4096u);
  ::setenv("NEURO_POSTMORTEM_RING", "10", 1);  // typo-proof: below the floor
  EXPECT_EQ(postmortem_ring_capacity_from_env(), 1024u);
  ::setenv("NEURO_POSTMORTEM_RING", "8192", 1);
  EXPECT_EQ(postmortem_ring_capacity_from_env(), 8192u);

  if (saved_dir != nullptr) {
    ::setenv("NEURO_POSTMORTEM_DIR", saved_dir_value.c_str(), 1);
  } else {
    ::unsetenv("NEURO_POSTMORTEM_DIR");
  }
  if (saved_ring != nullptr) {
    ::setenv("NEURO_POSTMORTEM_RING", saved_ring_value.c_str(), 1);
  } else {
    ::unsetenv("NEURO_POSTMORTEM_RING");
  }
}

}  // namespace
}  // namespace neuro::obs

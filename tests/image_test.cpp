// Unit tests for the volumetric image substrate: container geometry,
// interpolation, filters, noise, I/O, rigid transforms and resampling.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "base/check.h"
#include "base/rng.h"
#include "image/filters.h"
#include "image/image3d.h"
#include "image/io.h"
#include "image/transform.h"
#include "reg/rigid_registration.h"

namespace neuro {
namespace {

TEST(Image3DTest, ConstructionAndFill) {
  ImageF img({4, 5, 6}, 2.5f);
  EXPECT_EQ(img.dims(), IVec3(4, 5, 6));
  EXPECT_EQ(img.size(), 120u);
  EXPECT_FLOAT_EQ(img.at(3, 4, 5), 2.5f);
  img.fill(1.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 1.0f);
}

TEST(Image3DTest, RejectsBadDims) {
  EXPECT_THROW(ImageF({0, 4, 4}), CheckError);
  EXPECT_THROW(ImageF({4, 4, 4}, 0.0f, {0.0, 1.0, 1.0}), CheckError);
}

TEST(Image3DTest, AtBoundsChecked) {
  ImageF img({2, 2, 2});
  EXPECT_THROW(img.at(2, 0, 0), CheckError);
  EXPECT_THROW(img.at(-1, 0, 0), CheckError);
  EXPECT_NO_THROW(img.at(1, 1, 1));
}

TEST(Image3DTest, IndexIsXFastest) {
  ImageF img({3, 4, 5});
  EXPECT_EQ(img.index(1, 0, 0), 1u);
  EXPECT_EQ(img.index(0, 1, 0), 3u);
  EXPECT_EQ(img.index(0, 0, 1), 12u);
}

TEST(Image3DTest, PhysicalVoxelRoundTrip) {
  ImageF img({10, 10, 10}, 0.0f, {2.0, 3.0, 4.0}, {5.0, 6.0, 7.0});
  const Vec3 p = img.voxel_to_physical(2, 3, 4);
  EXPECT_EQ(p, Vec3(9.0, 15.0, 23.0));
  const Vec3 v = img.physical_to_voxel(p);
  EXPECT_NEAR(v.x, 2.0, 1e-12);
  EXPECT_NEAR(v.y, 3.0, 1e-12);
  EXPECT_NEAR(v.z, 4.0, 1e-12);
}

TEST(Image3DTest, ClampedReplicatesBoundary) {
  ImageF img({2, 2, 2});
  img.at(0, 0, 0) = 7.0f;
  EXPECT_FLOAT_EQ(img.clamped(-5, -1, 0), 7.0f);
}

TEST(Image3DTest, SameGridComparesGeometry) {
  ImageF a({4, 4, 4});
  ImageL b({4, 4, 4});
  EXPECT_TRUE(a.same_grid(b));
  ImageF c({4, 4, 4}, 0.0f, {2, 2, 2});
  EXPECT_FALSE(a.same_grid(c));
}

TEST(TrilinearTest, ExactOnLinearField) {
  // Trilinear interpolation must reproduce any trilinear function exactly.
  ImageF img({8, 8, 8});
  auto f = [](double x, double y, double z) { return 1.0 + 2 * x - 3 * y + 0.5 * z; };
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i) img(i, j, k) = static_cast<float>(f(i, j, k));
  Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    const double x = rng.uniform(0, 7), y = rng.uniform(0, 7), z = rng.uniform(0, 7);
    EXPECT_NEAR(sample_trilinear(img, {x, y, z}), f(x, y, z), 1e-4);
  }
}

TEST(TrilinearTest, ClampsOutside) {
  ImageF img({2, 2, 2}, 3.0f);
  EXPECT_NEAR(sample_trilinear(img, {-10, -10, -10}), 3.0, 1e-6);
  EXPECT_NEAR(sample_trilinear(img, {10, 10, 10}), 3.0, 1e-6);
}

TEST(NearestTest, PicksNearestVoxel) {
  ImageL img({4, 4, 4}, 0);
  img.at(2, 1, 3) = 9;
  EXPECT_EQ(sample_nearest(img, Vec3{2.4, 0.6, 3.4}), 9);
  EXPECT_EQ(sample_nearest(img, Vec3{1.4, 0.6, 3.4}), 0);
}

TEST(GaussianTest, PreservesConstant) {
  ImageF img({10, 10, 10}, 4.0f);
  const ImageF out = gaussian_smooth(img, 1.5);
  for (const float v : out.data()) EXPECT_NEAR(v, 4.0f, 1e-4);
}

TEST(GaussianTest, ReducesVariance) {
  ImageF img({16, 16, 16});
  Rng rng(1);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform(0, 100));
  const ImageF out = gaussian_smooth(img, 1.0);
  auto variance = [](const ImageF& im) {
    double s = 0, s2 = 0;
    for (const float v : im.data()) {
      s += v;
      s2 += static_cast<double>(v) * v;
    }
    const double n = static_cast<double>(im.size());
    return s2 / n - (s / n) * (s / n);
  };
  EXPECT_LT(variance(out), 0.3 * variance(img));
}

TEST(GradientTest, LinearRampGivesConstantGradient) {
  ImageF img({8, 8, 8}, 0.0f, {2.0, 1.0, 1.0});
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        img(i, j, k) = static_cast<float>(3.0 * i * 2.0 /*physical x*/ - 1.0 * j);
  const ImageV g = gradient(img);
  // Interior voxels see exact central differences.
  for (int k = 1; k < 7; ++k) {
    for (int j = 1; j < 7; ++j) {
      for (int i = 1; i < 7; ++i) {
        EXPECT_NEAR(g(i, j, k).x, 3.0, 1e-4);
        EXPECT_NEAR(g(i, j, k).y, -1.0, 1e-4);
        EXPECT_NEAR(g(i, j, k).z, 0.0, 1e-4);
      }
    }
  }
  const ImageF m = gradient_magnitude(img);
  EXPECT_NEAR(m(4, 4, 4), std::sqrt(10.0), 1e-4);
}

TEST(RicianNoiseTest, ZeroSigmaIsIdentity) {
  ImageF img({4, 4, 4}, 10.0f);
  Rng rng(5);
  add_rician_noise(img, 0.0, rng);
  for (const float v : img.data()) EXPECT_FLOAT_EQ(v, 10.0f);
}

TEST(RicianNoiseTest, BrightRegionStaysNearMean) {
  ImageF img({12, 12, 12}, 100.0f);
  Rng rng(5);
  add_rician_noise(img, 3.0, rng);
  double mean = 0;
  for (const float v : img.data()) mean += v;
  mean /= static_cast<double>(img.size());
  EXPECT_NEAR(mean, 100.0, 1.0);
}

TEST(RicianNoiseTest, AirBackgroundBecomesRayleigh) {
  // At zero signal the Rician distribution has mean sigma*sqrt(pi/2) > 0.
  ImageF img({12, 12, 12}, 0.0f);
  Rng rng(5);
  add_rician_noise(img, 4.0, rng);
  double mean = 0;
  for (const float v : img.data()) mean += v;
  mean /= static_cast<double>(img.size());
  EXPECT_NEAR(mean, 4.0 * std::sqrt(3.14159265 / 2.0), 0.5);
}

TEST(DriftTest, ModulatesSlices) {
  ImageF img({4, 4, 8}, 100.0f);
  apply_intensity_drift(img, 0.1);
  EXPECT_GT(img(0, 0, 0), img(0, 0, 7));  // cos ramp decreases along z
  EXPECT_NEAR(img(0, 0, 0), 110.0f, 0.5);
}

TEST(DilateTest, GrowsBySixNeighbourhood) {
  ImageL img({7, 7, 7}, 0);
  img.at(3, 3, 3) = 5;
  const ImageL d1 = dilate_label(img, 5, 1);
  EXPECT_EQ(d1.at(3, 3, 3), 1);
  EXPECT_EQ(d1.at(4, 3, 3), 1);
  EXPECT_EQ(d1.at(4, 4, 3), 0);  // diagonal excluded
  const ImageL d2 = dilate_label(img, 5, 2);
  EXPECT_EQ(d2.at(4, 4, 3), 1);
  EXPECT_EQ(d2.at(5, 3, 3), 1);
}

TEST(DifferenceTest, MadAndRms) {
  ImageF a({2, 2, 2}, 1.0f), b({2, 2, 2}, 4.0f);
  EXPECT_DOUBLE_EQ(mean_abs_difference(a, b), 3.0);
  EXPECT_DOUBLE_EQ(rms_difference(a, b), 3.0);
  ImageL mask({2, 2, 2}, 0);
  mask.at(0, 0, 0) = 1;
  b.at(0, 0, 0) = 1.0f;
  EXPECT_DOUBLE_EQ(mean_abs_difference(a, b, &mask), 0.0);
}

TEST(IoTest, FloatVolumeRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "neuro_io_f.nvol";
  ImageF img({5, 4, 3}, 0.0f, {1.5, 2.0, 2.5}, {1, 2, 3});
  Rng rng(2);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform(-10, 10));
  write_volume(path, img);
  const ImageF back = read_volume_f(path);
  EXPECT_TRUE(back.same_grid(img));
  EXPECT_EQ(back.data(), img.data());
  std::remove(path.c_str());
}

TEST(IoTest, LabelVolumeRoundTripAndTypeCheck) {
  const std::string path = std::filesystem::temp_directory_path() / "neuro_io_l.nvol";
  ImageL img({3, 3, 3}, 2);
  img.at(1, 1, 1) = 7;
  write_volume(path, img);
  const ImageL back = read_volume_l(path);
  EXPECT_EQ(back.data(), img.data());
  EXPECT_THROW(read_volume_f(path), CheckError);  // element type mismatch
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_volume_f("/nonexistent/path.nvol"), CheckError);
}

TEST(IoTest, PgmSliceWrites) {
  const std::string path = std::filesystem::temp_directory_path() / "neuro_slice.pgm";
  ImageF img({8, 8, 3}, 50.0f);
  img.at(4, 4, 1) = 200.0f;
  write_slice_pgm(path, img, 1);
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
  EXPECT_THROW(write_slice_pgm(path, img, 9), CheckError);
}

TEST(RigidTransformTest, IdentityByDefault) {
  const RigidTransform t;
  const Vec3 p{1, 2, 3};
  EXPECT_EQ(t.apply(p), p);
}

TEST(RigidTransformTest, ApplyInverseUndoesApply) {
  RigidTransform t;
  t.rotation = {0.1, -0.2, 0.3};
  t.translation = {5, -2, 1};
  t.center = {10, 10, 10};
  const Vec3 p{3, 4, 5};
  const Vec3 q = t.apply_inverse(t.apply(p));
  EXPECT_NEAR(norm(q - p), 0.0, 1e-10);
}

TEST(RigidTransformTest, InverseObjectMatchesApplyInverse) {
  RigidTransform t;
  t.rotation = {0.15, 0.25, -0.1};
  t.translation = {1, 2, 3};
  t.center = {4, 5, 6};
  const RigidTransform ti = t.inverse();
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const Vec3 p{rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10)};
    EXPECT_NEAR(norm(ti.apply(p) - t.apply_inverse(p)), 0.0, 1e-9);
  }
}

TEST(RigidTransformTest, ParamsRoundTrip) {
  RigidTransform t;
  t.rotation = {0.1, 0.2, 0.3};
  t.translation = {4, 5, 6};
  t.center = {1, 1, 1};
  const auto p = t.params();
  const RigidTransform back = RigidTransform::from_params(p, t.center);
  EXPECT_EQ(back.rotation, t.rotation);
  EXPECT_EQ(back.translation, t.translation);
}

TEST(ResampleTest, IdentityTransformReproducesImage) {
  ImageF img({8, 8, 8});
  Rng rng(4);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform(0, 100));
  const ImageF out = resample_rigid(img, img, RigidTransform{});
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(out.data()[i], img.data()[i], 1e-3);
  }
}

TEST(ResampleTest, PureTranslationShiftsContent) {
  ImageF img({8, 8, 8}, 0.0f);
  img.at(4, 4, 4) = 100.0f;
  RigidTransform t;
  t.translation = {1, 0, 0};  // fixed point p maps to moving point p + x̂
  const ImageF out = resample_rigid(img, img, t);
  EXPECT_NEAR(out.at(3, 4, 4), 100.0f, 1e-3);
  EXPECT_NEAR(out.at(4, 4, 4), 0.0f, 1e-3);
}

TEST(ResampleTest, LabelsUseNearestNeighbour) {
  ImageL img({6, 6, 6}, 0);
  img.at(3, 3, 3) = 7;
  RigidTransform t;
  t.translation = {0.4, 0, 0};
  const ImageL out = resample_rigid_labels(img, img, t);
  EXPECT_EQ(out.at(3, 3, 3), 7);  // 3.4 rounds back to 3
}

TEST(DownsampleTest, HalvesDimsPreservesMean) {
  ImageF img({8, 6, 4}, 0.0f, {1, 1, 1});
  for (auto& v : img.data()) v = 10.0f;
  const ImageF out = reg::downsample2(img);
  EXPECT_EQ(out.dims(), IVec3(4, 3, 2));
  EXPECT_DOUBLE_EQ(out.spacing().x, 2.0);
  for (const float v : out.data()) EXPECT_FLOAT_EQ(v, 10.0f);
}

TEST(DownsampleTest, OddDimsFoldIntoLastBlock) {
  ImageF img({5, 5, 5}, 1.0f);
  const ImageF out = reg::downsample2(img);
  EXPECT_EQ(out.dims(), IVec3(2, 2, 2));
  for (const float v : out.data()) EXPECT_FLOAT_EQ(v, 1.0f);
}

}  // namespace
}  // namespace neuro

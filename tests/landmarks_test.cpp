// Tests for landmark TRE evaluation, grid resampling and histogram matching.
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "base/rng.h"
#include "core/landmarks.h"
#include "core/pipeline.h"
#include "image/filters.h"
#include "phantom/brain_phantom.h"

namespace neuro {
namespace {

TEST(LandmarkTest, GroundTruthSelfConsistent) {
  // The intraop position of every landmark must map back to its preop
  // position through the stored true backward field.
  phantom::PhantomConfig pc;
  pc.dims = {48, 48, 48};
  pc.spacing = {2.8, 2.8, 2.8};
  const auto cas = phantom::make_case(pc, phantom::ShiftConfig{});
  const auto landmarks = core::phantom_landmarks(cas);
  EXPECT_GE(landmarks.size(), 4u);
  for (const auto& lm : landmarks) {
    const Vec3 q = lm.intraop_position;
    const Vec3 v = sample_trilinear_vec(cas.true_backward_shift,
                                        cas.true_backward_shift.physical_to_voxel(q));
    // Trilinear sampling of the analytic field adds sub-voxel error.
    EXPECT_LT(norm((q + v) - lm.preop_position), 0.8) << lm.name;
  }
}

TEST(LandmarkTest, WithRigidOffsetPositionsCompose) {
  phantom::PhantomConfig pc;
  pc.dims = {40, 40, 40};
  pc.spacing = {3.0, 3.0, 3.0};
  phantom::ShiftConfig noshift;
  noshift.max_sink_mm = 0;
  noshift.resection_collapse_mm = 0;
  noshift.resect_tumor = false;
  RigidTransform offset;
  offset.translation = {4, -2, 1};
  const auto cas = phantom::make_case(pc, noshift, offset);
  for (const auto& lm : core::phantom_landmarks(cas)) {
    // Pure rigid case: intraop position = R(preop position).
    EXPECT_LT(norm(lm.intraop_position - offset.apply(lm.preop_position)), 1e-6)
        << lm.name;
  }
}

TEST(LandmarkTest, PipelineImprovesTre) {
  phantom::PhantomConfig pc;
  pc.dims = {56, 56, 56};
  pc.spacing = {2.5, 2.5, 2.5};
  const auto cas = phantom::make_case(pc, phantom::ShiftConfig{});
  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = false;
  const auto result =
      core::run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);
  const auto report =
      core::evaluate_landmarks(result, core::phantom_landmarks(cas));
  EXPECT_LT(report.mean_simulated_mm, report.mean_rigid_only_mm);
  EXPECT_LT(report.mean_simulated_mm, 2.5);
  EXPECT_EQ(report.entries.size(), core::phantom_landmarks(cas).size());
}

TEST(ResampleGridTest, PreservesPhysicalExtentAndValues) {
  ImageF img({8, 8, 8}, 0.0f, {2, 2, 2});
  for (int k = 0; k < 8; ++k)
    for (int j = 0; j < 8; ++j)
      for (int i = 0; i < 8; ++i)
        img(i, j, k) = static_cast<float>(i + 2 * j + 3 * k);  // trilinear field
  const ImageF up = resample_to_grid(img, {16, 16, 16});
  EXPECT_EQ(up.dims(), IVec3(16, 16, 16));
  EXPECT_DOUBLE_EQ(up.spacing().x, 1.0);
  // Same physical point must sample (nearly) the same value.
  for (const Vec3 p : {Vec3{5, 5, 5}, Vec3{9, 3, 7}}) {
    EXPECT_NEAR(sample_physical(up, p), sample_physical(img, p), 0.8);
  }
  EXPECT_THROW(resample_to_grid(img, {0, 4, 4}), CheckError);
}

TEST(HistogramMatchTest, IdentityWhenDistributionsMatch) {
  ImageF img({12, 12, 12});
  Rng rng(2);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform(0, 100));
  const ImageF matched = match_histogram(img, img);
  double max_diff = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(matched.data()[i]) - img.data()[i]));
  }
  EXPECT_LT(max_diff, 100.0 / 256.0 + 0.5);  // within a bin width
}

TEST(HistogramMatchTest, UndoesGlobalGain) {
  // moving = 2 * reference: matching must restore the reference scale.
  ImageF ref({12, 12, 12});
  Rng rng(3);
  for (auto& v : ref.data()) v = static_cast<float>(rng.uniform(10, 200));
  ImageF moving = ref;
  for (auto& v : moving.data()) v *= 2.0f;
  const ImageF matched = match_histogram(moving, ref);
  double mean_ref = 0, mean_matched = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    mean_ref += ref.data()[i];
    mean_matched += matched.data()[i];
  }
  EXPECT_NEAR(mean_matched / static_cast<double>(ref.size()),
              mean_ref / static_cast<double>(ref.size()), 2.0);
}

TEST(HistogramMatchTest, MappingIsMonotone) {
  ImageF ref({10, 10, 10});
  ImageF moving({10, 10, 10});
  Rng rng(4);
  for (auto& v : ref.data()) v = static_cast<float>(std::pow(rng.uniform(), 2.0) * 90);
  for (auto& v : moving.data()) v = static_cast<float>(rng.uniform(0, 50));
  const ImageF matched = match_histogram(moving, ref);
  // Monotonicity: if moving[a] < moving[b] (strictly, by more than a bin),
  // then matched[a] <= matched[b].
  const double bin = 50.0 / 256.0;
  for (std::size_t a = 0; a < 300; ++a) {
    for (std::size_t b = a + 1; b < a + 5; ++b) {
      if (moving.data()[a] < moving.data()[b] - 2 * bin) {
        ASSERT_LE(matched.data()[a], matched.data()[b] + 1e-6);
      }
    }
  }
}

}  // namespace
}  // namespace neuro

// Tests for marching-tetrahedra isosurface extraction.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "base/check.h"
#include "mesh/marching.h"
#include "mesh/tri_surface.h"

namespace neuro::mesh {
namespace {

/// Signed distance to a sphere of radius r (analytic, exact).
ImageF sphere_sdf(int n, double r, Vec3 c, Vec3 spacing = {1, 1, 1}) {
  ImageF sdf({n, n, n}, 0.0f, spacing);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        sdf(i, j, k) = static_cast<float>(norm(sdf.voxel_to_physical(i, j, k) - c) - r);
      }
    }
  }
  return sdf;
}

TEST(MarchingTest, SphereVerticesLieOnSphere) {
  const Vec3 c{12, 12, 12};
  const double r = 7.0;
  const TriSurface surface = marching_tetrahedra(sphere_sdf(25, r, c), 0.0);
  ASSERT_GT(surface.num_vertices(), 100);
  double worst = 0;
  for (const auto& v : surface.vertices) {
    worst = std::max(worst, std::abs(norm(v - c) - r));
  }
  // Linear interpolation of an exact SDF: sub-0.1-voxel placement.
  EXPECT_LT(worst, 0.1);
}

TEST(MarchingTest, SphereAreaMatchesAnalytic) {
  const Vec3 c{12, 12, 12};
  const double r = 7.0;
  const TriSurface surface = marching_tetrahedra(sphere_sdf(25, r, c), 0.0);
  const double analytic = 4.0 * 3.14159265358979 * r * r;
  // Faceting makes the mesh area slightly smaller.
  EXPECT_NEAR(surface_area(surface), analytic, 0.05 * analytic);
}

TEST(MarchingTest, SurfaceIsClosed) {
  const TriSurface surface =
      marching_tetrahedra(sphere_sdf(21, 6.0, {10, 10, 10}), 0.0);
  std::map<std::pair<VertId, VertId>, int> edges;
  for (const auto& tri : surface.triangles) {
    for (int e = 0; e < 3; ++e) {
      VertId a = tri[static_cast<std::size_t>(e)];
      VertId b = tri[static_cast<std::size_t>((e + 1) % 3)];
      if (b < a) std::swap(a, b);
      ++edges[{a, b}];
    }
  }
  for (const auto& [edge, count] : edges) {
    ASSERT_EQ(count, 2);
  }
}

TEST(MarchingTest, NormalsPointTowardIncreasingField) {
  // SDF increases outward, so normals must point away from the center.
  const Vec3 c{10, 10, 10};
  const TriSurface surface = marching_tetrahedra(sphere_sdf(21, 6.0, c), 0.0);
  const auto normals = vertex_normals(surface);
  int outward = 0;
  for (const VertId v : surface.vert_ids()) {
    if (dot(normals[v], surface.vertices[v] - c) > 0) {
      ++outward;
    }
  }
  EXPECT_EQ(outward, surface.num_vertices());
}

TEST(MarchingTest, NonzeroLevelShiftsRadius) {
  const Vec3 c{12, 12, 12};
  const TriSurface surface = marching_tetrahedra(sphere_sdf(25, 7.0, c), 2.0);
  double mean_r = 0;
  for (const auto& v : surface.vertices) mean_r += norm(v - c);
  EXPECT_NEAR(mean_r / surface.num_vertices(), 9.0, 0.1);  // r + level
}

TEST(MarchingTest, StrideCoarsensButKeepsGeometry) {
  const Vec3 c{16, 16, 16};
  const TriSurface fine = marching_tetrahedra(sphere_sdf(33, 10.0, c), 0.0, 1);
  const TriSurface coarse = marching_tetrahedra(sphere_sdf(33, 10.0, c), 0.0, 2);
  EXPECT_LT(coarse.num_triangles(), fine.num_triangles() / 2);
  double worst = 0;
  for (const auto& v : coarse.vertices) {
    worst = std::max(worst, std::abs(norm(v - c) - 10.0));
  }
  EXPECT_LT(worst, 0.6);
}

TEST(MarchingTest, RespectsAnisotropicSpacing) {
  // Same voxel field, stretched z spacing: vertices still land on the sphere
  // in physical coordinates.
  const Vec3 c{12, 12, 24};
  ImageF sdf({25, 25, 25}, 0.0f, {1, 1, 2});
  for (int k = 0; k < 25; ++k) {
    for (int j = 0; j < 25; ++j) {
      for (int i = 0; i < 25; ++i) {
        sdf(i, j, k) = static_cast<float>(norm(sdf.voxel_to_physical(i, j, k) - c) - 8.0);
      }
    }
  }
  const TriSurface surface = marching_tetrahedra(sdf, 0.0);
  double worst = 0;
  for (const auto& v : surface.vertices) {
    worst = std::max(worst, std::abs(norm(v - c) - 8.0));
  }
  EXPECT_LT(worst, 0.25);
}

TEST(MarchingTest, EmptyAndFullFieldsProduceNothing) {
  ImageF all_positive({8, 8, 8}, 5.0f);
  EXPECT_EQ(marching_tetrahedra(all_positive, 0.0).num_triangles(), 0);
  ImageF all_negative({8, 8, 8}, -5.0f);
  EXPECT_EQ(marching_tetrahedra(all_negative, 0.0).num_triangles(), 0);
  EXPECT_THROW(marching_tetrahedra(all_positive, 0.0, 0), CheckError);
  EXPECT_THROW(marching_tetrahedra(all_positive, 0.0, 10), CheckError);
}

TEST(MarchingTest, MaskConvenienceProducesSmootherSurfaceThanLattice) {
  // The MT surface of a ball mask must be closer to the true radius than the
  // raw voxel staircase (whose corners are ~0.7 voxels off).
  const Vec3 c{12, 12, 12};
  ImageL mask({25, 25, 25}, 0);
  for (int k = 0; k < 25; ++k) {
    for (int j = 0; j < 25; ++j) {
      for (int i = 0; i < 25; ++i) {
        if (norm(Vec3(i, j, k) - c) <= 8.0) mask(i, j, k) = 1;
      }
    }
  }
  const TriSurface surface = isosurface_from_mask(mask);
  ASSERT_GT(surface.num_vertices(), 100);
  double mean_err = 0;
  for (const auto& v : surface.vertices) {
    mean_err += std::abs(norm(v - c) - 8.0);
  }
  mean_err /= surface.num_vertices();
  EXPECT_LT(mean_err, 0.45);  // well under the ~0.7-voxel staircase error
}

}  // namespace
}  // namespace neuro::mesh

// Tests for the tetrahedral mesh container, the labeled-lattice mesher
// (conformity, orientation, volume, labels), surface extraction and the
// partitioners.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "base/check.h"
#include "mesh/mesher.h"
#include "mesh/partition.h"
#include "mesh/tet_mesh.h"
#include "mesh/tri_surface.h"
#include "phantom/brain_phantom.h"

namespace neuro::mesh {
namespace {

TEST(TetGeometryTest, VolumeSignsAndMagnitude) {
  const Vec3 a{0, 0, 0}, b{1, 0, 0}, c{0, 1, 0}, d{0, 0, 1};
  EXPECT_NEAR(tet_volume(a, b, c, d), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(tet_volume(a, c, b, d), -1.0 / 6.0, 1e-12);  // swapped orientation
}

TEST(TetGeometryTest, BarycentricPartitionOfUnityAndVertices) {
  const Vec3 a{0, 0, 0}, b{2, 0, 0}, c{0, 2, 0}, d{0, 0, 2};
  const auto l = barycentric(a, b, c, d, {0.5, 0.5, 0.5});
  EXPECT_NEAR(l[0] + l[1] + l[2] + l[3], 1.0, 1e-12);
  for (const double li : l) EXPECT_GT(li, 0.0);
  const auto lv = barycentric(a, b, c, d, b);
  EXPECT_NEAR(lv[1], 1.0, 1e-12);
  EXPECT_NEAR(lv[0], 0.0, 1e-12);
  // Outside point has a negative coordinate.
  const auto lo = barycentric(a, b, c, d, {-1, 0, 0});
  EXPECT_LT(*std::min_element(lo.begin(), lo.end()), 0.0);
}

TEST(TetGeometryTest, QualityRegularIsOneSliverIsSmall) {
  // Regular tetrahedron.
  const double s = 1.0 / std::sqrt(2.0);
  const Vec3 a{1, 0, -s}, b{-1, 0, -s}, c{0, 1, s}, d{0, -1, s};
  EXPECT_NEAR(tet_quality_radius_ratio(a, b, c, d), 1.0, 1e-9);
  // Near-degenerate sliver.
  EXPECT_LT(tet_quality_radius_ratio({0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                                     {0.5, 0.5, 1e-4}),
            0.01);
}

ImageL solid_block(IVec3 dims, Vec3 spacing = {1, 1, 1}) {
  return ImageL(dims, 1, spacing);
}

TEST(MesherTest, SolidBlockVolumeIsExact) {
  // A fully labeled block meshes into tets that tile each lattice cell, so
  // the total volume must equal the lattice volume exactly.
  const ImageL labels = solid_block({9, 9, 9}, {2, 2, 2});
  MesherConfig cfg;
  cfg.stride = 2;
  const TetMesh mesh = mesh_labeled_volume(labels, cfg);
  EXPECT_EQ(mesh.num_tets(), 4 * 4 * 4 * 5);
  EXPECT_NEAR(total_volume(mesh), 16.0 * 16.0 * 16.0, 1e-9);
}

TEST(MesherTest, AllTetsPositivelyOriented) {
  const ImageL labels = solid_block({9, 9, 9});
  MesherConfig cfg;
  cfg.stride = 2;
  const TetMesh mesh = mesh_labeled_volume(labels, cfg);
  for (const TetId t : mesh.tet_ids()) {
    EXPECT_GT(tet_volume(mesh, t), 0.0);
  }
}

TEST(MesherTest, MeshIsConforming) {
  // Every interior face must be shared by exactly two tets and boundary faces
  // by exactly one — the "fully connected and consistent" property the paper
  // requires of its mesher. This catches parity/diagonal mismatches.
  const ImageL labels = solid_block({7, 7, 7});
  MesherConfig cfg;
  cfg.stride = 2;
  const TetMesh mesh = mesh_labeled_volume(labels, cfg);

  std::map<std::array<NodeId, 3>, int> faces;
  static constexpr int kF[4][3] = {{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}};
  for (const auto& tet : mesh.tets) {
    for (const auto& f : kF) {
      std::array<NodeId, 3> key{tet[static_cast<std::size_t>(f[0])],
                                tet[static_cast<std::size_t>(f[1])],
                                tet[static_cast<std::size_t>(f[2])]};
      std::sort(key.begin(), key.end());
      ++faces[key];
    }
  }
  for (const auto& [key, count] : faces) {
    EXPECT_GE(count, 1);
    EXPECT_LE(count, 2);
  }
  // A solid block must have both interior and boundary faces.
  int boundary = 0, interior = 0;
  for (const auto& [key, count] : faces) {
    boundary += count == 1;
    interior += count == 2;
  }
  EXPECT_GT(boundary, 0);
  EXPECT_GT(interior, 0);
}

TEST(MesherTest, KeepsOnlyRequestedLabels) {
  ImageL labels({9, 9, 9}, 1);
  for (int k = 0; k < 9; ++k)
    for (int j = 0; j < 9; ++j)
      for (int i = 5; i < 9; ++i) labels(i, j, k) = 2;
  MesherConfig cfg;
  cfg.stride = 2;
  cfg.keep_labels = {2};
  const TetMesh mesh = mesh_labeled_volume(labels, cfg);
  EXPECT_GT(mesh.num_tets(), 0);
  for (const auto l : mesh.tet_labels) EXPECT_EQ(l, 2);
  // Roughly half the block (majority labeling makes boundary cells fuzzy by
  // up to one cell layer).
  EXPECT_GT(total_volume(mesh), 0.25 * 8 * 8 * 8);
  EXPECT_LT(total_volume(mesh), 0.75 * 8 * 8 * 8);
}

TEST(MesherTest, BackgroundIsNeverMeshed) {
  ImageL labels({9, 9, 9}, 0);
  labels.at(4, 4, 4) = 1;  // single voxel: smaller than a cell, may vanish
  MesherConfig cfg;
  cfg.stride = 4;
  const TetMesh mesh = mesh_labeled_volume(labels, cfg);
  for (const auto l : mesh.tet_labels) EXPECT_NE(l, 0);
}

TEST(MesherTest, StrideControlsResolution) {
  const ImageL labels = solid_block({17, 17, 17});
  MesherConfig coarse, fine;
  coarse.stride = 4;
  fine.stride = 2;
  const int n_coarse = mesh_labeled_volume(labels, coarse).num_nodes();
  const int n_fine = mesh_labeled_volume(labels, fine).num_nodes();
  EXPECT_GT(n_fine, 4 * n_coarse);
}

TEST(MesherTest, NodesAreLatticeOrdered) {
  const ImageL labels = solid_block({5, 5, 5});
  MesherConfig cfg;
  cfg.stride = 2;
  const TetMesh mesh = mesh_labeled_volume(labels, cfg);
  // x-fastest ordering ⇒ z must be non-decreasing with node id.
  for (NodeId n{1}; n < mesh.nodes.end_id(); ++n) {
    EXPECT_GE(mesh.nodes[n].z + 1e-9, mesh.nodes[n - 1].z);
  }
}

TEST(MesherTest, RejectsBadStride) {
  const ImageL labels = solid_block({5, 5, 5});
  MesherConfig cfg;
  cfg.stride = 0;
  EXPECT_THROW(mesh_labeled_volume(labels, cfg), CheckError);
  cfg.stride = 100;
  EXPECT_THROW(mesh_labeled_volume(labels, cfg), CheckError);
}

TEST(MesherTest, TargetNodeSearchReachesMinimum) {
  const ImageL labels = solid_block({17, 17, 17});
  MesherConfig cfg;
  const TetMesh mesh = mesh_with_target_nodes(labels, cfg, 500, 8);
  EXPECT_GE(mesh.num_nodes(), 500);
}

TEST(MesherTest, PhantomBrainMeshLooksAnatomical) {
  phantom::PhantomConfig pcfg;
  pcfg.dims = {40, 40, 40};
  pcfg.spacing = {3, 3, 3};
  const auto cas = phantom::make_case(pcfg, phantom::ShiftConfig{});
  MesherConfig cfg;
  cfg.stride = 2;
  cfg.keep_labels = {3, 4, 5, 6};
  const TetMesh mesh = mesh_labeled_volume(cas.preop_labels, cfg);
  EXPECT_GT(mesh.num_nodes(), 100);
  // Label mix: mostly brain, some ventricle.
  std::map<std::uint8_t, int> counts;
  for (const auto l : mesh.tet_labels) ++counts[l];
  EXPECT_GT(counts[3], counts[4]);
  EXPECT_GT(counts[4], 0);
  const QualityStats q = quality_stats(mesh);
  EXPECT_GT(q.min_quality, 0.1);  // lattice tets are uniformly well-shaped
  EXPECT_GT(q.min_volume, 0.0);
}

TEST(AdjacencyTest, IncludesSelfAndNeighbours) {
  TetMesh mesh;
  mesh.nodes = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}};
  mesh.tets = {{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}};
  mesh.tet_labels = {1};
  const auto adj = node_adjacency(mesh);
  EXPECT_EQ(adj[NodeId{0}],
            (std::vector<NodeId>{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}));
  EXPECT_TRUE(adj[NodeId{4}].empty());  // isolated node
  const auto counts = node_tet_counts(mesh);
  EXPECT_EQ(counts[NodeId{0}], 1);
  EXPECT_EQ(counts[NodeId{4}], 0);
}

TEST(SurfaceTest, ExtractedSurfaceIsClosedAndOutward) {
  const ImageL labels = solid_block({7, 7, 7}, {2, 2, 2});
  MesherConfig cfg;
  cfg.stride = 2;
  const TetMesh mesh = mesh_labeled_volume(labels, cfg);
  const TriSurface surface = extract_boundary_surface(mesh, {1});
  EXPECT_GT(surface.num_triangles(), 0);
  EXPECT_EQ(surface.mesh_nodes.size(), surface.vertices.size());

  // Closed manifold: every edge shared by exactly two triangles.
  std::map<std::pair<VertId, VertId>, int> edges;
  for (const auto& tri : surface.triangles) {
    for (int e = 0; e < 3; ++e) {
      VertId a = tri[static_cast<std::size_t>(e)];
      VertId b = tri[static_cast<std::size_t>((e + 1) % 3)];
      if (b < a) std::swap(a, b);
      ++edges[{a, b}];
    }
  }
  for (const auto& [edge, count] : edges) EXPECT_EQ(count, 2);

  // Outward orientation: normals point away from the centroid.
  Vec3 centroid{};
  for (const auto& v : surface.vertices) centroid += v;
  centroid /= static_cast<double>(surface.num_vertices());
  const auto normals = vertex_normals(surface);
  int outward = 0;
  for (const VertId v : surface.vert_ids()) {
    if (dot(normals[v], surface.vertices[v] - centroid) > 0) {
      ++outward;
    }
  }
  EXPECT_GT(outward, surface.num_vertices() * 9 / 10);

  // Surface area close to the block's 6 faces (lattice surface is exact here).
  EXPECT_NEAR(surface_area(surface), 6.0 * 12.0 * 12.0, 1e-6);
}

TEST(SurfaceTest, MeshNodeBookkeepingIsConsistent) {
  const ImageL labels = solid_block({5, 5, 5});
  MesherConfig cfg;
  cfg.stride = 2;
  const TetMesh mesh = mesh_labeled_volume(labels, cfg);
  const TriSurface surface = extract_boundary_surface(mesh, {1});
  for (const VertId v : surface.vert_ids()) {
    const NodeId n = surface.mesh_nodes[v];
    EXPECT_EQ(surface.vertices[v], mesh.nodes[n]);
  }
}

TEST(SurfaceTest, LabelSubsetSelectsInterface) {
  // Two half-blocks: the surface of label 2 alone includes the interface.
  ImageL labels({9, 9, 9}, 1);
  for (int k = 0; k < 9; ++k)
    for (int j = 0; j < 9; ++j)
      for (int i = 4; i < 9; ++i) labels(i, j, k) = 2;
  MesherConfig cfg;
  cfg.stride = 2;
  cfg.rule = MesherConfig::LabelRule::kCentroid;
  const TetMesh mesh = mesh_labeled_volume(labels, cfg);
  const TriSurface s2 = extract_boundary_surface(mesh, {2});
  const TriSurface all = extract_boundary_surface(mesh, {1, 2});
  EXPECT_GT(s2.num_triangles(), 0);
  EXPECT_GT(all.num_triangles(), s2.num_triangles());
}

TEST(PartitionTest, NodeBalancedCoversContiguously) {
  const Partition p = partition_node_balanced(103, 4);
  EXPECT_EQ(p.nranks, 4);
  NodeId covered{0};
  for (const Rank r : p.rank_ids()) {
    const auto [b, e] = p.ranges[r];
    EXPECT_EQ(b, covered);
    EXPECT_GT(e, b);
    covered = e;
    EXPECT_NEAR(p.nodes_of(r), 103.0 / 4.0, 1.1);
  }
  EXPECT_EQ(covered, NodeId{103});
}

TEST(PartitionTest, OwnerOfIsConsistent) {
  const Partition p = partition_node_balanced(50, 7);
  for (NodeId n{0}; n < NodeId{50}; ++n) {
    const Rank r = p.owner_of(n);
    const auto [b, e] = p.ranges[r];
    EXPECT_GE(n, b);
    EXPECT_LT(n, e);
  }
}

TEST(PartitionTest, SingleRankOwnsEverything) {
  const Partition p = partition_node_balanced(10, 1);
  EXPECT_EQ(p.ranges[Rank{0}], (base::IdRange<NodeId>{NodeId{0}, NodeId{10}}));
}

TEST(PartitionTest, RejectsMoreRanksThanNodes) {
  EXPECT_THROW(partition_node_balanced(3, 4), CheckError);
}

TEST(PartitionTest, WeightedBalancesWeights) {
  // Heavily skewed weights: first half weight 9, second half weight 1.
  std::vector<double> w(100, 1.0);
  for (int i = 0; i < 50; ++i) w[static_cast<std::size_t>(i)] = 9.0;
  const Partition p = partition_weighted(w, 2);
  // Balanced cut is far left of the midpoint.
  const int cut = p.ranges[Rank{0}].second.value();
  EXPECT_LT(cut, 40);
  double w0 = 0, w1 = 0;
  for (int i = 0; i < cut; ++i) w0 += w[static_cast<std::size_t>(i)];
  for (int i = cut; i < 100; ++i) w1 += w[static_cast<std::size_t>(i)];
  EXPECT_NEAR(w0, w1, 10.0);
}

TEST(PartitionTest, ConnectivityBalancedReducesWorkImbalance) {
  // Mesh the phantom brain: surface nodes touch fewer tets than interior
  // nodes, so node-balanced slabs have unequal assembly work.
  phantom::PhantomConfig pcfg;
  pcfg.dims = {40, 40, 40};
  pcfg.spacing = {3, 3, 3};
  const auto cas = phantom::make_case(pcfg, phantom::ShiftConfig{});
  MesherConfig cfg;
  cfg.stride = 2;
  cfg.keep_labels = {3, 4, 5, 6};
  const TetMesh mesh = mesh_labeled_volume(cas.preop_labels, cfg);
  const auto counts = node_tet_counts(mesh);

  auto imbalance = [&](const Partition& p) {
    double max_w = 0, sum_w = 0;
    for (const Rank r : p.rank_ids()) {
      double w = 0;
      for (const NodeId n : p.ranges[r]) {
        w += counts[n];
      }
      max_w = std::max(max_w, w);
      sum_w += w;
    }
    return max_w / (sum_w / p.nranks);
  };

  const double node_imb = imbalance(partition_node_balanced(mesh.num_nodes(), 8));
  const double conn_imb = imbalance(partition_connectivity_balanced(mesh, 8));
  EXPECT_LT(conn_imb, node_imb + 1e-9);
  EXPECT_LT(conn_imb, 1.3);
}

TEST(PartitionTest, FreeNodeBalancedEqualizesFreeCounts) {
  // 200 nodes; the first 100 are "fixed" (zero solve work).
  TetMesh mesh;
  mesh.nodes.resize(200);
  std::vector<std::uint8_t> fixed(200, 0);
  for (int i = 0; i < 100; ++i) fixed[static_cast<std::size_t>(i)] = 1;
  const Partition p = partition_free_node_balanced(mesh, fixed, 2);
  // Fixed nodes cost ~half a free node, so rank 0 (all-fixed prefix) takes
  // more than half the nodes: 100 fixed (weight 50) + ~25 free ≈ 125 nodes.
  EXPECT_GT(p.nodes_of(Rank{0}), 115);
  int free0 = 0;
  for (const NodeId n : p.ranges[Rank{0}]) {
    free0 += fixed[n.index()] == 0;
  }
  EXPECT_NEAR(free0, 25, 6);
}

}  // namespace
}  // namespace neuro::mesh

// Tests for MetaImage (.mhd/.raw) interchange I/O and the SSD-vs-MI
// registration metric comparison.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "base/check.h"
#include "base/rng.h"
#include "image/filters.h"
#include "image/metaimage.h"
#include "phantom/brain_phantom.h"
#include "reg/rigid_registration.h"

namespace neuro {
namespace {

std::string tmp(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(MetaImageTest, FloatRoundTrip) {
  ImageF img({6, 5, 4}, 0.0f, {1.5, 2.0, 2.5}, {10, 20, 30});
  Rng rng(1);
  for (auto& v : img.data()) v = static_cast<float>(rng.uniform(-100, 100));
  const std::string stem = tmp("neuro_meta_f");
  write_metaimage(stem, img);
  const ImageF back = read_metaimage_f(stem + ".mhd");
  EXPECT_TRUE(back.same_grid(img));
  EXPECT_EQ(back.data(), img.data());
  std::remove((stem + ".mhd").c_str());
  std::remove((stem + ".raw").c_str());
}

TEST(MetaImageTest, UcharRoundTripAndMhdSuffixHandling) {
  ImageL img({3, 3, 3}, 7);
  img.at(1, 1, 1) = 42;
  const std::string stem = tmp("neuro_meta_l");
  write_metaimage(stem + ".mhd", img);  // suffix must be stripped, not doubled
  const ImageL back = read_metaimage_l(stem + ".mhd");
  EXPECT_EQ(back.data(), img.data());
  std::remove((stem + ".mhd").c_str());
  std::remove((stem + ".raw").c_str());
}

TEST(MetaImageTest, TypeMismatchRejected) {
  ImageL img({2, 2, 2}, 1);
  const std::string stem = tmp("neuro_meta_t");
  write_metaimage(stem, img);
  EXPECT_THROW(read_metaimage_f(stem + ".mhd"), CheckError);
  std::remove((stem + ".mhd").c_str());
  std::remove((stem + ".raw").c_str());
}

TEST(MetaImageTest, HeaderIsItkCompatibleText) {
  ImageF img({4, 4, 4}, 1.0f, {2, 2, 2});
  const std::string stem = tmp("neuro_meta_h");
  write_metaimage(stem, img);
  std::ifstream f(stem + ".mhd");
  std::string text((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("ObjectType = Image"), std::string::npos);
  EXPECT_NE(text.find("NDims = 3"), std::string::npos);
  EXPECT_NE(text.find("DimSize = 4 4 4"), std::string::npos);
  EXPECT_NE(text.find("ElementType = MET_FLOAT"), std::string::npos);
  EXPECT_NE(text.find("ElementDataFile = neuro_meta_h.raw"), std::string::npos);
  std::remove((stem + ".mhd").c_str());
  std::remove((stem + ".raw").c_str());
}

TEST(MetaImageTest, MissingAndMalformedHeadersRejected) {
  EXPECT_THROW(read_metaimage_f("/nonexistent/vol.mhd"), CheckError);
  const std::string path = tmp("neuro_meta_bad.mhd");
  {
    std::ofstream f(path);
    f << "ObjectType = Image\nNDims = 3\nElementType = MET_FLOAT\n";
    // no DimSize / ElementDataFile
  }
  EXPECT_THROW(read_metaimage_f(path), CheckError);
  std::remove(path.c_str());
}

TEST(MetricComparisonTest, SsdFindsAlignedIdenticalImages) {
  // Same modality, same intensities: SSD works (sanity).
  phantom::PhantomConfig pc;
  pc.dims = {32, 32, 32};
  pc.spacing = {3.5, 3.5, 3.5};
  pc.intensity_drift = 0.0;
  phantom::ShiftConfig noshift;
  noshift.max_sink_mm = 0;
  noshift.resection_collapse_mm = 0;
  noshift.resect_tumor = false;
  const auto cas = phantom::make_case(pc, noshift);
  reg::MiConfig mi;
  const double at_truth =
      reg::mean_squared_difference(cas.intraop, cas.preop, RigidTransform{}, mi);
  RigidTransform off;
  off.translation = {4, 0, 0};
  const double misaligned =
      reg::mean_squared_difference(cas.intraop, cas.preop, off, mi);
  EXPECT_LT(at_truth, misaligned);
}

TEST(MetricComparisonTest, MiBeatsSsdUnderIntensityRemapping) {
  // Strongly remap one image's intensities (as different acquisitions do).
  // MI must still rank the true pose best; SSD's optimum moves away.
  phantom::PhantomConfig pc;
  pc.dims = {32, 32, 32};
  pc.spacing = {3.5, 3.5, 3.5};
  phantom::ShiftConfig noshift;
  noshift.max_sink_mm = 0;
  noshift.resection_collapse_mm = 0;
  noshift.resect_tumor = false;
  const auto cas = phantom::make_case(pc, noshift);

  ImageF remapped = cas.preop;
  for (auto& v : remapped.data()) {
    v = 255.0f - v;  // inverted contrast: the extreme of "different modality"
  }
  reg::MiConfig mi;
  const double mi_true =
      reg::mutual_information(cas.intraop, remapped, RigidTransform{}, mi);
  RigidTransform off;
  off.translation = {5, 0, 0};
  const double mi_off = reg::mutual_information(cas.intraop, remapped, off, mi);
  EXPECT_GT(mi_true, mi_off);  // MI survives the remapping

  const double ssd_true =
      reg::mean_squared_difference(cas.intraop, remapped, RigidTransform{}, mi);
  const double ssd_off =
      reg::mean_squared_difference(cas.intraop, remapped, off, mi);
  // For inverted contrast, SSD prefers (or barely distinguishes) the wrong
  // pose: it must NOT show the clear true-pose preference MI shows.
  EXPECT_LT((ssd_off - ssd_true) / std::max(1.0, ssd_true), 0.2);
}

TEST(MetricComparisonTest, RegistrationDriverAcceptsBothMetrics) {
  phantom::PhantomConfig pc;
  pc.dims = {28, 28, 28};
  pc.spacing = {4.0, 4.0, 4.0};
  pc.intensity_drift = 0.0;
  phantom::ShiftConfig noshift;
  noshift.max_sink_mm = 0;
  noshift.resection_collapse_mm = 0;
  noshift.resect_tumor = false;
  RigidTransform truth;
  truth.translation = {3.0, -2.0, 0.0};
  const auto cas = phantom::make_case(pc, noshift, truth);

  for (const auto metric : {reg::MetricKind::kMutualInformation,
                            reg::MetricKind::kMeanSquaredDifference}) {
    reg::RigidRegistrationConfig cfg;
    cfg.metric = metric;
    cfg.pyramid_levels = 2;
    cfg.powell_iterations = 5;
    const auto result = reg::register_rigid_mi(cas.intraop, cas.preop, cfg);
    const Vec3 probe{50, 50, 50};
    const double err = norm(result.transform.apply(probe) - truth.apply_inverse(probe));
    EXPECT_LT(err, 3.5) << "metric " << static_cast<int>(metric);
  }
}

}  // namespace
}  // namespace neuro

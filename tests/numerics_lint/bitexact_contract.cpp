// Seeded-bug fixture for tools/lint/check_numerics.py (--self-test), strict
// NEURO_BITEXACT profile: inside a marked function *any* unordered-container
// iteration and *any* clock read is a finding, even ones the relaxed rules
// would pass. The identical loop in an unmarked function stays clean:
//
// EXPECT: unordered-iteration@20
// EXPECT: nondet-source@23

#include <chrono>
#include <unordered_map>

#include "base/numerics_annotations.h"

namespace neuro {

// BUG(strict): lookup-only visit and a clock read inside a bit-exact contract.
NEURO_BITEXACT
double strict_kernel(const std::unordered_map<int, double>& weights) {
  double n = 0.0;
  for (const auto& [k, v] : weights) {
    if (v > 0.5) n = v;
  }
  const auto t0 = std::chrono::steady_clock::now();
  return n + std::chrono::duration<double>(t0.time_since_epoch()).count();
}

// OK: the same lookup-only visit outside a strict region is not observable.
double relaxed_scan(const std::unordered_map<int, double>& weights) {
  double n = 0.0;
  for (const auto& [k, v] : weights) {
    if (v > 0.5) n = v;
  }
  return n;
}

}  // namespace neuro

// Clean fixture for tools/lint/check_numerics.py (--self-test): the sanctioned
// counterparts of every seeded bug — sorted containers for anything exported
// or accumulated, tolerance compares, consumed Status. Both engines must
// report nothing here.
//
// EXPECT-CLEAN

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace neuro {

// Sorted container: iteration order is the key order, deterministic.
double total_energy(const std::map<int, double>& cell_energy) {
  double total = 0.0;
  for (const auto& [cell, e] : cell_energy) total += e;
  return total;
}

// Deterministic export: rows come out in key order.
void dump_counts(std::ostream& os, const std::map<std::string, int>& counts) {
  for (const auto& [name, n] : counts) os << name << "," << n << "\n";
}

// Sequential accumulation over a vector: order is the index order.
double sum(const std::vector<double>& xs) {
  double total = 0.0;
  for (const double x : xs) total += x;
  return total;
}

// Tolerance-based comparison.
bool near(double a, double b, double tol) {
  const double d = a > b ? a - b : b - a;
  return d <= tol;
}

}  // namespace neuro

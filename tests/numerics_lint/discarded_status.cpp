// Seeded-bug fixture for tools/lint/check_numerics.py (--self-test), rule
// `discarded-status`: a call returning Status / Outcome<T> used as a bare
// statement. Consumed values and NEURO_STATUS_IGNORED are clean:
//
// EXPECT: discarded-status@34
// EXPECT: discarded-status@39

#include "base/numerics_annotations.h"

namespace neuro {

struct Status {
  int code = 0;
  bool ok() const { return code == 0; }
};

template <class T>
struct Outcome {
  int code = 0;
  T value{};
};

struct DeadlineBudget {
  Status check(const char* stage) const { return Status{stage != nullptr ? 0 : 1}; }
};

Status flush_queue() { return Status{}; }
Outcome<int> parse_count(const char* text) {
  return Outcome<int>{text == nullptr ? 1 : 0, 0};
}

// BUG: dropped Status — a deadline violation would be swallowed here.
void tick(const DeadlineBudget& budget) {
  budget.check("tick");
}

// BUG: dropped Outcome<T>.
void refresh(const char* text) {
  parse_count(text);
}

// OK: both values are consumed.
bool drain(const DeadlineBudget& budget) {
  const Status st = budget.check("drain");
  return st.ok() && flush_queue().ok();
}

// OK (suppressed): intentionally fire-and-forget on the teardown path.
void teardown() {
  NEURO_STATUS_IGNORED(flush_queue(), "teardown: best-effort flush, failure already reported");
}

}  // namespace neuro

// Seeded-bug fixture for tools/lint/check_numerics.py (--self-test), rule
// `float-exact-compare`: == / != against a floating-point literal. Declaring
// operator==, integer compares, and tolerance checks must stay clean:
//
// EXPECT: float-exact-compare@22
// EXPECT: float-exact-compare@27

namespace neuro {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;
};

// OK: declaring the operator is not a comparison site.
bool operator==(const Vec2& a, const Vec2& b) {
  return a.x == b.x && a.y == b.y;
}

// BUG: exact equality against a computed residual.
bool converged(double residual) {
  return residual == 0.0;
}

// BUG: != against a float literal.
bool not_unit(float scale) {
  return scale != 1.0f;
}

// OK: integer comparison.
bool is_root(int rank) { return rank == 0; }

// OK: tolerance-based comparison.
bool near(double a, double b, double tol) {
  const double d = a > b ? a - b : b - a;
  return d <= tol;
}

// OK (suppressed): exact-replay assertion between two runs of identical code.
bool replay_matches(double a, double b) {
  // NEURO_NONDET_OK(exact-replay check: both sides come from the identical instruction stream)
  return a == b && b == 0.0;
}

}  // namespace neuro

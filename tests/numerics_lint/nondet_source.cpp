// Seeded-bug fixture for tools/lint/check_numerics.py (--self-test), rule
// `nondet-source`: entropy and clock reads on solve-path code. Fixtures are
// not under the timing/RNG allowlist, so every unsuppressed source is a
// finding under both engines:
//
// EXPECT: nondet-source@20
// EXPECT: nondet-source@26
// EXPECT: nondet-source@32
// EXPECT: nondet-source@37

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace neuro {

// BUG: wall-clock read feeding a numeric value.
double elapsed_guard(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start).count();
}

// BUG: unseeded hardware entropy.
unsigned hardware_seed() {
  std::random_device rd;
  return rd();
}

// BUG: C library rand() — global, unseeded, order-dependent state.
int noisy_pick(int n) {
  return rand() % n;
}

// BUG: wall-clock seconds as a seed.
long long wall_seconds() {
  return static_cast<long long>(time(nullptr));
}

// OK (suppressed): logging-only timestamp, never reaches numerics.
long long log_stamp() {
  // NEURO_NONDET_OK(log timestamp only; the value never reaches numerics or exports)
  return static_cast<long long>(time(nullptr));
}

}  // namespace neuro

// Seeded-bug fixture for tools/lint/check_numerics.py (--self-test), rule
// `unordered-iteration`: iterating a hash container is only a finding when the
// loop body makes the visit order observable (FP accumulation, communicator
// traffic, exported output). Both engines must report exactly these:
//
// EXPECT: unordered-iteration@26
// EXPECT: unordered-iteration@35
// EXPECT: unordered-iteration@43

#include <cstddef>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace neuro {

struct MockComm {
  double allreduce_sum(double v) { return v; }
};

// BUG: the rounding of `total` follows the hash-table layout of the run.
double total_energy(const std::unordered_map<int, double>& cell_energy) {
  double total = 0.0;
  for (const auto& [cell, e] : cell_energy) {
    total += e;
  }
  return total;
}

// BUG: one collective per visit, issued in hash order.
double reduce_all(MockComm& comm, const std::unordered_map<int, double>& local) {
  double acc = 0.0;
  for (const auto& [k, v] : local) {
    acc = comm.allreduce_sum(v);
  }
  return acc;
}

// BUG: report rows come out in hash order — export bytes differ between runs.
void dump_names(std::ostream& os, const std::unordered_set<std::string>& names) {
  for (const auto& n : names) {
    os << n << "\n";
  }
}

// OK: lookup-only visit; nothing order-sensitive escapes the loop.
std::size_t count_positive(const std::unordered_map<int, double>& m) {
  std::size_t n = 0;
  for (const auto& [k, v] : m) {
    if (v > 0.0) ++n;
  }
  return n;
}

// OK (suppressed): the visit order is erased by the caller's sort.
std::vector<int> keys_for_sorting(const std::unordered_map<int, double>& m) {
  std::vector<int> keys;
  // NEURO_NONDET_OK(collected keys are sorted by the caller before use)
  for (const auto& [k, v] : m) keys.push_back(k);
  return keys;
}

}  // namespace neuro

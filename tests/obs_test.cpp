// Tests for the observability subsystem (src/obs/): span nesting and
// attributes, the disabled-path no-op contract, deterministic multi-rank
// merge, histogram bucket semantics, NDJSON export, and — the property the
// whole design hangs on — that tracing a pipeline run changes nothing about
// its numerical result.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/communicator.h"
#include "phantom/brain_phantom.h"

namespace neuro::obs {
namespace {

constexpr bool kObsCompiledIn =
#ifdef NEURO_OBS_DISABLED
    false;
#else
    true;
#endif

/// Busy-waits so span durations are reliably nonzero without sleeping.
void spin_for_us(double us) {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
             .count() < us) {
  }
}

const Attr* find_attr(const TraceEvent& e, std::string_view key) {
  for (const auto& a : e.attrs) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

TEST(Span, NestsAndCarriesAttributes) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with NEURO_OBS=OFF";
  Tracer tracer(true);
  {
    Span outer = tracer.span("outer");
    spin_for_us(20.0);
    {
      Span inner = tracer.span("inner");
      inner.attr("iteration", std::int64_t{7});
      inner.attr("residual", 1.25e-6);
      inner.attr("rung", "reduced_mesh");
      spin_for_us(20.0);
    }
    spin_for_us(20.0);
  }
  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Merge order is (rank, ts, -dur, seq): the enclosing span sorts first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  const TraceEvent& outer = events[0];
  const TraceEvent& inner = events[1];
  EXPECT_EQ(outer.rank, -1);  // main thread, no SPMD region
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);

  const Attr* iteration = find_attr(inner, "iteration");
  ASSERT_NE(iteration, nullptr);
  EXPECT_EQ(iteration->kind, Attr::Kind::kInt);
  EXPECT_EQ(iteration->i, 7);
  const Attr* residual = find_attr(inner, "residual");
  ASSERT_NE(residual, nullptr);
  EXPECT_EQ(residual->kind, Attr::Kind::kDouble);
  EXPECT_EQ(residual->d, 1.25e-6);
  const Attr* rung = find_attr(inner, "rung");
  ASSERT_NE(rung, nullptr);
  EXPECT_EQ(rung->kind, Attr::Kind::kString);
  EXPECT_EQ(rung->s, "reduced_mesh");
}

TEST(Span, DisabledTracerRecordsNothing) {
  Tracer tracer(false);
  {
    Span span = tracer.span("never");
    EXPECT_FALSE(span.active());
    span.attr("ignored", 1.0);  // must be a no-op, not a crash
    EXPECT_EQ(span.seconds(), 0.0);  // inert span never reads the clock
  }
  tracer.counter("also_never", 3.0);
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Span, TimedSpanMeasuresWhileDisabled) {
  // The pipeline's StageTiming rows read timed_span even in the clinical
  // (untraced) configuration: the stopwatch half must keep working.
  Tracer tracer(false);
  Span span = tracer.timed_span("stage");
  EXPECT_FALSE(span.active());
  spin_for_us(50.0);
  EXPECT_GT(span.seconds(), 0.0);
  const double total = span.close();
  EXPECT_GE(total, 50e-6 * 0.5);  // generous: coarse clocks round down
  EXPECT_EQ(span.close(), total);  // idempotent
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ScopedThreadRankTest, BindsAndRestores) {
  EXPECT_EQ(thread_rank(), -1);
  {
    ScopedThreadRank outer_rank(3);
    EXPECT_EQ(thread_rank(), 3);
    {
      ScopedThreadRank inner_rank(5);
      EXPECT_EQ(thread_rank(), 5);
    }
    EXPECT_EQ(thread_rank(), 3);
  }
  EXPECT_EQ(thread_rank(), -1);
}

TEST(Tracer, StreamCapTruncatesAndIsReportedPerThread) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with NEURO_OBS=OFF";
  Tracer::Options options;
  options.max_events_per_stream = 4;
  Tracer tracer(true, options);
  const auto worker = [&tracer](int rank, int n) {
    ScopedThreadRank scoped(rank);
    for (int i = 0; i < n; ++i) tracer.span("s").close();
  };
  std::thread rank0(worker, 0, 10);  // drops 6
  std::thread rank1(worker, 1, 7);   // drops 3
  rank0.join();
  rank1.join();
  EXPECT_EQ(tracer.event_count(), 8u);
  EXPECT_EQ(tracer.dropped_count(), 9u);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string trace = os.str();
  // Loss is attributed per thread, not as one process-wide flag: an instant
  // on each affected rank's track with its own drop count, plus a matching
  // "trace_dropped" counter series.
  EXPECT_NE(trace.find(R"("trace_truncated","args":{"dropped":6,"rank":0})"),
            std::string::npos);
  EXPECT_NE(trace.find(R"("trace_truncated","args":{"dropped":3,"rank":1})"),
            std::string::npos);
  EXPECT_NE(trace.find(R"("trace_dropped","args":{"value":6})"),
            std::string::npos);
  EXPECT_NE(trace.find(R"("trace_dropped","args":{"value":3})"),
            std::string::npos);
}

TEST(Tracer, MultiRankMergeIsDeterministic) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with NEURO_OBS=OFF";
  Tracer tracer(true);
  const auto body = [&tracer](par::Communicator&) {
    for (int i = 0; i < 3; ++i) {
      Span span = tracer.span("work");
      span.attr("step", i);
      spin_for_us(20.0);
    }
  };
  par::run_spmd(4, body);
  const std::vector<TraceEvent> first = tracer.snapshot();
  tracer.clear();
  par::run_spmd(4, body);
  const std::vector<TraceEvent> second = tracer.snapshot();

  ASSERT_EQ(first.size(), 12u);
  ASSERT_EQ(second.size(), 12u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    // Timestamps differ run to run; the merged structure may not.
    EXPECT_EQ(first[i].rank, second[i].rank) << i;
    EXPECT_EQ(first[i].name, second[i].name) << i;
    const Attr* a = find_attr(first[i], "step");
    const Attr* b = find_attr(second[i], "step");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->i, b->i) << i;
  }
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_GE(first[i].rank, first[i - 1].rank);  // grouped by rank...
    if (first[i].rank == first[i - 1].rank) {     // ...time-ordered within
      EXPECT_GE(first[i].ts_us, first[i - 1].ts_us);
    }
  }
}

TEST(Tracer, ChromeTraceExportShape) {
  if (!kObsCompiledIn) GTEST_SKIP() << "built with NEURO_OBS=OFF";
  Tracer tracer(true);
  {
    Span span = tracer.span("solve");
    span.attr("residual", 0.5);
    spin_for_us(10.0);
  }
  tracer.counter("gmres.residual", 0.25);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find(R"("name":"process_name")"), std::string::npos);
  // Main-thread events land on tid 0, which must be named "main".
  EXPECT_NE(trace.find(R"("tid":0,"name":"thread_name","args":{"name":"main"})"),
            std::string::npos);
  EXPECT_NE(trace.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(trace.find(R"("name":"solve")"), std::string::npos);
  EXPECT_NE(trace.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(trace.find(R"("name":"gmres.residual","args":{"value":0.25})"),
            std::string::npos);
  EXPECT_EQ(trace.find("trace_truncated"), std::string::npos);
}

TEST(Metrics, HistogramBucketsAreLeInclusive) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 2.0, 5.0});
  h.observe(1.0);  // on-edge lands in its bucket (Prometheus "le")
  h.observe(1.5);
  h.observe(5.0);
  h.observe(6.0);  // past the last edge
  EXPECT_EQ(h.bucket_count(), 3u);
  EXPECT_EQ(h.count_in_bucket(0), 1);
  EXPECT_EQ(h.count_in_bucket(1), 1);
  EXPECT_EQ(h.count_in_bucket(2), 1);
  EXPECT_EQ(h.overflow_count(), 1);
  EXPECT_EQ(h.total_count(), 4);
  EXPECT_EQ(h.sum(), 13.5);
  // Re-lookup returns the same instrument; the original edges stand.
  EXPECT_EQ(&registry.histogram("lat", {99.0}), &h);
  EXPECT_EQ(h.upper_edge(0), 1.0);
}

TEST(Metrics, NdjsonExportRoundTrips) {
  MetricsRegistry registry;
  registry.counter("events").add(42);
  registry.gauge("load").set(0.1);
  Histogram& h = registry.histogram("lat", {1.0, 2.5});
  h.observe(0.5);
  h.observe(2.5);
  h.observe(7.0);

  std::ostringstream os;
  registry.write_ndjson(os);
  EXPECT_EQ(os.str(),
            "{\"name\":\"events\",\"type\":\"counter\",\"value\":42}\n"
            "{\"name\":\"lat\",\"type\":\"histogram\",\"buckets\":"
            "[{\"le\":1,\"count\":1},{\"le\":2.5,\"count\":1}],"
            "\"overflow\":1,\"count\":3,\"sum\":10}\n"
            "{\"name\":\"load\",\"type\":\"gauge\",\"value\":"
            "0.10000000000000001}\n");
  // The 17-significant-digit gauge value parses back to the exact double.
  EXPECT_EQ(std::strtod("0.10000000000000001", nullptr), 0.1);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(TraceEnv, TruthinessMatchesConvention) {
  const char* saved = std::getenv("NEURO_TRACE");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::unsetenv("NEURO_TRACE");
  EXPECT_FALSE(trace_enabled_by_env());
  ::setenv("NEURO_TRACE", "", 1);
  EXPECT_FALSE(trace_enabled_by_env());
  ::setenv("NEURO_TRACE", "0", 1);
  EXPECT_FALSE(trace_enabled_by_env());
  ::setenv("NEURO_TRACE", "1", 1);
  EXPECT_EQ(trace_enabled_by_env(), kObsCompiledIn);
  ::setenv("NEURO_TRACE", "on", 1);
  EXPECT_EQ(trace_enabled_by_env(), kObsCompiledIn);

  if (saved != nullptr) {
    ::setenv("NEURO_TRACE", saved_value.c_str(), 1);
  } else {
    ::unsetenv("NEURO_TRACE");
  }
}

TEST(PipelineTracing, TracedRunIsBitIdentical) {
  // The acceptance property of ISSUE 5: enabling tracing must not perturb
  // the computation. Run the same small phantom pipeline untraced and
  // traced and require the recovered displacement field to match bit for
  // bit (instrumentation reads clocks and work counters; it never
  // communicates or touches the arithmetic).
  phantom::PhantomConfig pcfg;
  pcfg.dims = {48, 48, 48};
  pcfg.spacing = {2.5, 2.5, 2.5};
  const phantom::PhantomCase cas =
      phantom::make_case(pcfg, phantom::ShiftConfig{});

  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = false;
  config.mesher.stride = 4;
  config.fem.nranks = 2;

  const core::PipelineResult baseline = core::run_intraop_pipeline(
      cas.preop, cas.preop_labels, cas.intraop, config);
  global().set_enabled(true);
  const core::PipelineResult traced = core::run_intraop_pipeline(
      cas.preop, cas.preop_labels, cas.intraop, config);
  global().set_enabled(false);

  if (kObsCompiledIn) {
    EXPECT_GT(global().event_count(), 0u);
    std::ostringstream os;
    global().write_chrome_trace(os);
    EXPECT_NE(os.str().find(R"("name":"pipeline.biomechanical_simulation")"),
              std::string::npos);
  }
  global().clear();

  const auto& a = baseline.forward_field.data();
  const auto& b = traced.forward_field.data();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(a[0])), 0);
  EXPECT_EQ(baseline.fem.stats.iterations, traced.fem.stats.iterations);
  EXPECT_EQ(baseline.fem.stats.final_residual, traced.fem.stats.final_residual);

  // Regression for the convergence-history gate: the pipeline leaves
  // SolverConfig::record_history off, so no per-iteration history may be
  // allocated on the clinical path (telemetry reads it from the trace).
  EXPECT_TRUE(baseline.fem.stats.history.empty());
  EXPECT_TRUE(traced.fem.stats.history.empty());
}

}  // namespace
}  // namespace neuro::obs

// Unit tests for the in-process message-passing runtime.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "base/check.h"
#include "par/communicator.h"

namespace neuro::par {
namespace {

TEST(RunSpmdTest, SingleRankRunsInline) {
  int calls = 0;
  run_spmd(1, [&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(RunSpmdTest, AllRanksRunExactlyOnce) {
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> per_rank(8);
  run_spmd(8, [&](Communicator& comm) {
    ++calls;
    ++per_rank[static_cast<std::size_t>(comm.rank())];
    EXPECT_EQ(comm.size(), 8);
  });
  EXPECT_EQ(calls.load(), 8);
  for (auto& c : per_rank) EXPECT_EQ(c.load(), 1);
}

TEST(RunSpmdTest, RejectsZeroRanks) {
  EXPECT_THROW(run_spmd(0, [](Communicator&) {}), CheckError);
}

TEST(RunSpmdTest, SingleRankExceptionPropagates) {
  EXPECT_THROW(
      run_spmd(1, [](Communicator&) { NEURO_CHECK_MSG(false, "boom"); }),
      CheckError);
}

TEST(BarrierTest, OrdersPhases) {
  // Every rank increments in phase 1; after the barrier all increments from
  // phase 1 must be visible to every rank.
  constexpr int P = 6;
  std::atomic<int> counter{0};
  run_spmd(P, [&](Communicator& comm) {
    ++counter;
    comm.barrier();
    EXPECT_EQ(counter.load(), P);
    comm.barrier();
    // Reusable across generations.
    ++counter;
    comm.barrier();
    EXPECT_EQ(counter.load(), 2 * P);
  });
}

TEST(BroadcastTest, RootDataReachesAll) {
  run_spmd(5, [](Communicator& comm) {
    std::vector<int> data;
    if (comm.rank() == 2) data = {10, 20, 30};
    comm.broadcast(data, 2);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[0], 10);
    EXPECT_EQ(data[2], 30);
  });
}

TEST(BroadcastTest, EmptyVectorBroadcasts) {
  run_spmd(3, [](Communicator& comm) {
    std::vector<double> data;
    if (comm.rank() == 0) data.clear();
    comm.broadcast(data, 0);
    EXPECT_TRUE(data.empty());
  });
}

TEST(AllreduceTest, SumMatchesFormulaOnEveryRank) {
  run_spmd(7, [](Communicator& comm) {
    const double total = comm.allreduce_sum(static_cast<double>(comm.rank() + 1));
    EXPECT_DOUBLE_EQ(total, 28.0);  // 1+2+...+7
  });
}

TEST(AllreduceTest, SumIsBitwiseIdenticalAcrossRanks) {
  // Irrational contributions: summation order matters in floating point, so
  // identical results on all ranks prove the reduction uses a fixed order.
  constexpr int P = 6;
  std::vector<double> results(P);
  run_spmd(P, [&](Communicator& comm) {
    const double mine = std::sqrt(2.0 + comm.rank()) * 1e-3;
    results[static_cast<std::size_t>(comm.rank())] = comm.allreduce_sum(mine);
  });
  for (int r = 1; r < P; ++r) {
    EXPECT_EQ(results[0], results[static_cast<std::size_t>(r)]);
  }
}

TEST(AllreduceTest, VectorSum) {
  run_spmd(4, [](Communicator& comm) {
    std::vector<double> v{static_cast<double>(comm.rank()), 1.0};
    comm.allreduce_sum(std::span<double>(v.data(), v.size()));
    EXPECT_DOUBLE_EQ(v[0], 6.0);  // 0+1+2+3
    EXPECT_DOUBLE_EQ(v[1], 4.0);
  });
}

TEST(AllreduceTest, MaxAndMin) {
  run_spmd(5, [](Communicator& comm) {
    EXPECT_EQ(comm.allreduce_max(comm.rank() * 10), 40);
    EXPECT_EQ(comm.allreduce_min(comm.rank() * 10), 0);
    EXPECT_DOUBLE_EQ(comm.allreduce_max(-1.0 * comm.rank()), 0.0);
  });
}

TEST(AllgatherTest, ConcatenatesInRankOrder) {
  run_spmd(4, [](Communicator& comm) {
    // Rank r contributes r copies of r (variable lengths).
    std::vector<int> mine(static_cast<std::size_t>(comm.rank()), comm.rank());
    const auto all = comm.allgatherv(std::span<const int>(mine.data(), mine.size()));
    std::vector<int> expected;
    for (int r = 0; r < 4; ++r) {
      for (int i = 0; i < r; ++i) expected.push_back(r);
    }
    EXPECT_EQ(all, expected);
  });
}

TEST(AllgatherTest, PartsKeepRankBoundaries) {
  run_spmd(3, [](Communicator& comm) {
    std::vector<double> mine{static_cast<double>(comm.rank())};
    const auto parts = comm.allgather_parts(std::span<const double>(mine.data(), 1));
    ASSERT_EQ(parts.size(), 3u);
    for (int r = 0; r < 3; ++r) {
      ASSERT_EQ(parts[static_cast<std::size_t>(r)].size(), 1u);
      EXPECT_DOUBLE_EQ(parts[static_cast<std::size_t>(r)][0], r);
    }
  });
}

TEST(SendRecvTest, PairwiseExchange) {
  run_spmd(2, [](Communicator& comm) {
    const std::vector<int> mine{comm.rank() * 100, comm.rank() * 100 + 1};
    const int other = 1 - comm.rank();
    comm.send(other, 42, std::span<const int>(mine.data(), mine.size()));
    const auto got = comm.recv<int>(other, 42);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], other * 100);
  });
}

TEST(SendRecvTest, TagsAreIndependentChannels) {
  run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> a{1}, b{2};
      comm.send(1, 7, std::span<const int>(a.data(), 1));
      comm.send(1, 8, std::span<const int>(b.data(), 1));
    } else {
      // Receive in the opposite order of sending: tags must demultiplex.
      EXPECT_EQ(comm.recv<int>(0, 8).at(0), 2);
      EXPECT_EQ(comm.recv<int>(0, 7).at(0), 1);
    }
  });
}

TEST(SendRecvTest, MessagesOnSameTagStayOrdered) {
  run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        const std::vector<int> msg{i};
        comm.send(1, 0, std::span<const int>(msg.data(), 1));
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv<int>(0, 0).at(0), i);
      }
    }
  });
}

TEST(SendRecvTest, EmptyMessage) {
  run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, std::span<const double>());
    } else {
      EXPECT_TRUE(comm.recv<double>(0, 3).empty());
    }
  });
}

TEST(WorkCounterTest, AccumulatesAndTakes) {
  WorkCounter wc;
  wc.add_flops(10);
  wc.add_mem_bytes(100);
  wc.add_comm(64, 2);
  wc.add_collective(8);
  const WorkRecord r = wc.take();
  EXPECT_DOUBLE_EQ(r.flops, 10);
  EXPECT_DOUBLE_EQ(r.mem_bytes, 100);
  EXPECT_DOUBLE_EQ(r.comm_bytes, 64);
  EXPECT_DOUBLE_EQ(r.comm_msgs, 2);
  EXPECT_DOUBLE_EQ(r.coll_rounds, 1);
  EXPECT_DOUBLE_EQ(r.coll_bytes, 8);
  // take() resets.
  const WorkRecord r2 = wc.take();
  EXPECT_DOUBLE_EQ(r2.flops, 0);
}

TEST(WorkCounterTest, CommunicatorAccountsCollectives) {
  auto work = run_spmd(3, [](Communicator& comm) {
    comm.allreduce_sum(1.0);
    comm.barrier();
  });
  ASSERT_EQ(work.size(), 3u);
  for (const auto& w : work) {
    EXPECT_DOUBLE_EQ(w.coll_rounds, 2.0);  // allreduce + barrier
    EXPECT_DOUBLE_EQ(w.coll_bytes, 8.0);
  }
}

TEST(SendRecvTest, NonblockingExchangeOverlapsCompute) {
  auto work = run_spmd(2, [](Communicator& comm) {
    const int other = 1 - comm.rank();
    const std::vector<double> payload{comm.rank() + 1.0, 7.0};
    // Post the receive, ship the halo, "compute", then complete.
    auto pending = comm.irecv(other, 42);
    comm.isend(other, 42, std::span<const double>(payload.data(), payload.size()));
    double acc = 0.0;
    for (int i = 0; i < 100; ++i) acc += i;
    const auto got = comm.wait<double>(pending);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_DOUBLE_EQ(got[0], other + 1.0);
    EXPECT_DOUBLE_EQ(got[1], 7.0);
    EXPECT_DOUBLE_EQ(acc, 4950.0);
  });
  // Nonblocking traffic lands in the overlap counters, not the blocking ones:
  // the cost model may hide it behind compute.
  for (const auto& w : work) {
    EXPECT_DOUBLE_EQ(w.overlap_comm_bytes, 16.0);
    EXPECT_DOUBLE_EQ(w.overlap_comm_msgs, 1.0);
    EXPECT_DOUBLE_EQ(w.comm_bytes, 0.0);
    EXPECT_DOUBLE_EQ(w.comm_msgs, 0.0);
  }
}

TEST(SendRecvTest, WaitCompletesExactlyOnce) {
  run_spmd(2, [](Communicator& comm) {
    const int other = 1 - comm.rank();
    const std::vector<int> payload{comm.rank()};
    auto pending = comm.irecv(other, 3);
    comm.isend(other, 3, std::span<const int>(payload.data(), payload.size()));
    ASSERT_EQ(comm.wait<int>(pending).size(), 1u);
    EXPECT_THROW(static_cast<void>(comm.wait<int>(pending)), CheckError);
  });
}

TEST(WorkCounterTest, SendAccountsBytes) {
  auto work = run_spmd(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> msg(16);
      comm.send(1, 0, std::span<const double>(msg.data(), msg.size()));
    } else {
      comm.recv<double>(0, 0);
    }
  });
  EXPECT_DOUBLE_EQ(work[0].comm_bytes, 128.0);
  EXPECT_DOUBLE_EQ(work[0].comm_msgs, 1.0);
  EXPECT_DOUBLE_EQ(work[1].comm_bytes, 0.0);
}

TEST(PhaseWorkTest, RecordsAndRetrieves) {
  PhaseWork pw;
  pw.record("assemble", std::vector<WorkRecord>(4));
  EXPECT_TRUE(pw.has_phase("assemble"));
  EXPECT_FALSE(pw.has_phase("solve"));
  EXPECT_EQ(pw.phase("assemble").size(), 4u);
  EXPECT_THROW(static_cast<void>(pw.phase("solve")), CheckError);
}

TEST(PhaseWorkTest, NamesAndReportAreSortedRegardlessOfInsertion) {
  // Export determinism: the report must be a pure function of the recorded
  // data, not of insertion order — two runs that record phases in different
  // orders still produce byte-identical reports.
  PhaseWork a;
  a.record("solve", std::vector<WorkRecord>(2));
  a.record("assemble", std::vector<WorkRecord>(2));
  a.record("mesh", std::vector<WorkRecord>(1));
  PhaseWork b;
  b.record("mesh", std::vector<WorkRecord>(1));
  b.record("assemble", std::vector<WorkRecord>(2));
  b.record("solve", std::vector<WorkRecord>(2));

  const std::vector<std::string> expected{"assemble", "mesh", "solve"};
  EXPECT_EQ(a.names(), expected);
  EXPECT_EQ(b.names(), expected);

  std::ostringstream ra;
  std::ostringstream rb;
  a.write_report(ra);
  b.write_report(rb);
  const std::string report_a = ra.str();
  EXPECT_EQ(report_a, rb.str());
  // Header plus one CSV row per (phase, rank).
  EXPECT_NE(report_a.find(
                "phase,rank,flops,mem_bytes,comm_bytes,comm_msgs,coll_rounds"),
            std::string::npos);
  EXPECT_EQ(static_cast<int>(std::count(report_a.begin(), report_a.end(), '\n')),
            1 + 2 + 2 + 1);
}

class SpmdRankCountTest : public ::testing::TestWithParam<int> {};

TEST_P(SpmdRankCountTest, CollectivesConsistentAtAnyRankCount) {
  const int P = GetParam();
  run_spmd(P, [&](Communicator& comm) {
    const int sum = comm.allreduce_sum(comm.rank());
    EXPECT_EQ(sum, P * (P - 1) / 2);
    const auto all =
        comm.allgatherv(std::span<const int>(&sum, 1));
    EXPECT_EQ(static_cast<int>(all.size()), P);
  });
}

INSTANTIATE_TEST_SUITE_P(RankSweep, SpmdRankCountTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

}  // namespace
}  // namespace neuro::par

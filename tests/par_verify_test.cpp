// Tests for the SPMD collective-order verifier (par/verify.h): matched
// sequences pass, diverging ranks are detected and reported (not deadlocked),
// and the verifier stays out of the way when disabled.
#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "base/check.h"
#include "par/communicator.h"
#include "par/verify.h"

namespace neuro::par {
namespace {

SpmdOptions verify_on() {
  SpmdOptions o;
  o.verify = SpmdOptions::Verify::kOn;
  return o;
}

SpmdOptions verify_off() {
  SpmdOptions o;
  o.verify = SpmdOptions::Verify::kOff;
  return o;
}

/// Runs `body` expecting a CollectiveMismatchError; returns its report text.
std::string expect_mismatch(int nranks,
                            const std::function<void(Communicator&)>& body) {
  try {
    run_spmd(nranks, body, verify_on());
  } catch (const CollectiveMismatchError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected CollectiveMismatchError";
  return {};
}

/// Guard that pins an environment variable for one test and restores it.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(ParVerifyTest, MatchedCollectiveSequencesPass) {
  const auto work = run_spmd(
      5,
      [](Communicator& comm) {
        comm.barrier();
        std::vector<int> data;
        if (comm.rank() == 2) data = {1, 2, 3};
        comm.broadcast(data, 2);
        EXPECT_EQ(data.size(), 3u);
        const double sum = comm.allreduce_sum(1.0);
        EXPECT_DOUBLE_EQ(sum, 5.0);
        EXPECT_EQ(comm.allreduce_max(comm.rank()), 4);
        EXPECT_EQ(comm.allreduce_min(comm.rank()), 0);
        std::vector<int> mine{comm.rank()};
        EXPECT_EQ(comm.allgatherv(std::span<const int>(mine.data(), 1)).size(), 5u);
      },
      verify_on());
  ASSERT_EQ(work.size(), 5u);
  EXPECT_GT(work[0].coll_rounds, 0.0);
}

TEST(ParVerifyTest, MatchedPointToPointPasses) {
  run_spmd(
      3,
      [](Communicator& comm) {
        const int next = (comm.rank() + 1) % comm.size();
        const int prev = (comm.rank() + comm.size() - 1) % comm.size();
        const std::vector<int> mine{comm.rank()};
        comm.send(next, 7, std::span<const int>(mine.data(), 1));
        EXPECT_EQ(comm.recv<int>(prev, 7).at(0), prev);
        comm.barrier();
      },
      verify_on());
}

TEST(ParVerifyTest, DivergingCollectiveKindIsReportedPerRank) {
  const std::string report = expect_mismatch(4, [](Communicator& comm) {
    if (comm.rank() == 1) {
      comm.barrier();  // everyone else reduces: divergence
    } else {
      comm.allreduce_sum(1.0);
    }
  });
  // The report names the diverging rank and both operations.
  EXPECT_NE(report.find("rank 1"), std::string::npos) << report;
  EXPECT_NE(report.find("barrier"), std::string::npos) << report;
  EXPECT_NE(report.find("allreduce_sum"), std::string::npos) << report;
  // ... and carries one line per rank.
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(report.find("rank " + std::to_string(r) + ":"), std::string::npos)
        << report;
  }
}

TEST(ParVerifyTest, DivergingBroadcastRootIsDetected) {
  const std::string report = expect_mismatch(3, [](Communicator& comm) {
    std::vector<int> data{comm.rank()};
    comm.broadcast(data, comm.rank() == 2 ? 1 : 0);  // rank 2 names root 1
  });
  EXPECT_NE(report.find("broadcast"), std::string::npos) << report;
  EXPECT_NE(report.find("rank 2"), std::string::npos) << report;
}

TEST(ParVerifyTest, MismatchedAllreduceSizeIsDetected) {
  // Without verification this corrupts the reduction (caught later, or not at
  // all); with it the divergent byte count is named before any slot is read.
  const std::string report = expect_mismatch(3, [](Communicator& comm) {
    std::vector<double> v(comm.rank() == 0 ? 2 : 1, 1.0);
    comm.allreduce_sum(std::span<double>(v.data(), v.size()));
  });
  EXPECT_NE(report.find("allreduce_sum"), std::string::npos) << report;
  EXPECT_NE(report.find("bytes"), std::string::npos) << report;
}

TEST(ParVerifyTest, RankExitingEarlyFailsWaitersInsteadOfDeadlocking) {
  const std::string report = expect_mismatch(3, [](Communicator& comm) {
    if (comm.rank() != 2) comm.barrier();  // rank 2 leaves without the barrier
  });
  EXPECT_NE(report.find("rank 2"), std::string::npos) << report;
  EXPECT_NE(report.find("exited"), std::string::npos) << report;
}

TEST(ParVerifyTest, CollectiveAfterAnotherRankExitedIsDetected) {
  const std::string report = expect_mismatch(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.barrier();
      comm.barrier();
    } else {
      comm.barrier();  // then exits; rank 0's second barrier can never complete
    }
  });
  EXPECT_NE(report.find("exited"), std::string::npos) << report;
}

TEST(ParVerifyTest, UnmatchedRecvTimesOutWithReport) {
  ScopedEnv timeout("NEURO_PAR_VERIFY_TIMEOUT_MS", "300");
  const std::string report = expect_mismatch(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const auto got = comm.recv<int>(1, 9);  // rank 1 never sends
      EXPECT_TRUE(got.empty());               // not reached
    }
  });
  EXPECT_NE(report.find("recv"), std::string::npos) << report;
  EXPECT_NE(report.find("tag=9"), std::string::npos) << report;
}

TEST(ParVerifyTest, ApplicationErrorPropagatesInsteadOfSecondaryReports) {
  // One rank throws a CheckError mid-run; without verification the other
  // ranks would deadlock at the next barrier. With it they fail fast, and
  // run_spmd rethrows the *root cause*, not the secondary mismatch report.
  try {
    run_spmd(
        3,
        [](Communicator& comm) {
          if (comm.rank() == 1) NEURO_CHECK_MSG(false, "application bug");
          comm.barrier();
        },
        verify_on());
    FAIL() << "expected CheckError";
  } catch (const CollectiveMismatchError& e) {
    FAIL() << "secondary report shadowed the root cause: " << e.what();
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("application bug"), std::string::npos);
  }
}

TEST(ParVerifyTest, DisabledVerifierRunsIdenticalWorkloads) {
  ScopedEnv env("NEURO_PAR_VERIFY", nullptr);
  const auto work = run_spmd(
      4,
      [](Communicator& comm) {
        comm.barrier();
        const double sum = comm.allreduce_sum(static_cast<double>(comm.rank()));
        EXPECT_DOUBLE_EQ(sum, 6.0);
      },
      verify_off());
  // Work accounting is byte-identical whether or not verification ran.
  const auto verified = run_spmd(
      4,
      [](Communicator& comm) {
        comm.barrier();
        const double sum = comm.allreduce_sum(static_cast<double>(comm.rank()));
        EXPECT_DOUBLE_EQ(sum, 6.0);
      },
      verify_on());
  ASSERT_EQ(work.size(), verified.size());
  for (std::size_t r = 0; r < work.size(); ++r) {
    EXPECT_DOUBLE_EQ(work[r].coll_rounds, verified[r].coll_rounds);
    EXPECT_DOUBLE_EQ(work[r].coll_bytes, verified[r].coll_bytes);
  }
}

TEST(ParVerifyTest, EnvironmentVariableEnablesVerification) {
#ifdef NEURO_PAR_VERIFY
  // Forced on at compile time; the env var is moot.
  EXPECT_TRUE(verify_enabled_by_default());
#else
  {
    ScopedEnv env("NEURO_PAR_VERIFY", nullptr);
    EXPECT_FALSE(verify_enabled_by_default());
  }
  {
    ScopedEnv env("NEURO_PAR_VERIFY", "0");
    EXPECT_FALSE(verify_enabled_by_default());
  }
  {
    ScopedEnv env("NEURO_PAR_VERIFY", "1");
    EXPECT_TRUE(verify_enabled_by_default());
  }
  // kAuto follows the environment: a divergence is caught without passing
  // SpmdOptions explicitly.
  {
    ScopedEnv env("NEURO_PAR_VERIFY", "1");
    EXPECT_THROW(run_spmd(2,
                          [](Communicator& comm) {
                            if (comm.rank() == 0) comm.barrier();
                          }),
                 CollectiveMismatchError);
  }
#endif
}

TEST(ParVerifyTest, FormatOpNamesEveryKind) {
  EXPECT_EQ(format_op(CollectiveOp{OpKind::kBarrier, 3, -1, -1, 0}), "barrier#3");
  EXPECT_EQ(format_op(CollectiveOp{OpKind::kBroadcast, 0, 2, -1, 16}),
            "broadcast#0(root=2, bytes=16)");
  EXPECT_EQ(format_op(CollectiveOp{OpKind::kAllreduceSum, 7, -1, -1, 8}),
            "allreduce_sum#7(bytes=8)");
  EXPECT_EQ(format_op(CollectiveOp{OpKind::kSend, 1, 3, 42, 64}),
            "send#1(to=3, tag=42, bytes=64)");
  EXPECT_EQ(format_op(CollectiveOp{OpKind::kRecv, 1, 0, 42, 0}),
            "recv#1(from=0, tag=42, bytes=0)");
}

TEST(ParVerifyTest, OpsMatchComparesSignatures) {
  const CollectiveOp a{OpKind::kAllreduceSum, 4, -1, -1, 8};
  CollectiveOp b = a;
  EXPECT_TRUE(ops_match(a, b));
  b.bytes = 16;
  EXPECT_FALSE(ops_match(a, b));  // reduction sizes are part of the signature
  CollectiveOp g{OpKind::kAllgatherv, 4, -1, -1, 8};
  CollectiveOp h = g;
  h.bytes = 100;
  EXPECT_TRUE(ops_match(g, h));  // gathers are legitimately ragged
  h.kind = OpKind::kBarrier;
  EXPECT_FALSE(ops_match(g, h));
}

}  // namespace
}  // namespace neuro::par

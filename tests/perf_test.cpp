// Unit tests for the machine/network cost models and the scaling predictor.
#include <gtest/gtest.h>

#include <vector>

#include "base/check.h"
#include "perf/models.h"

namespace neuro::perf {
namespace {

par::WorkRecord make_work(double flops, double mem = 0.0, double comm_bytes = 0.0,
                          double msgs = 0.0, double rounds = 0.0,
                          double coll_bytes = 0.0) {
  par::WorkRecord w;
  w.flops = flops;
  w.mem_bytes = mem;
  w.comm_bytes = comm_bytes;
  w.comm_msgs = msgs;
  w.coll_rounds = rounds;
  w.coll_bytes = coll_bytes;
  return w;
}

TEST(MachineModelTest, ComputeSecondsRooflineSum) {
  const MachineModel m{"test", 1e9, 1e10};
  const auto w = make_work(2e9, 5e10);
  EXPECT_DOUBLE_EQ(m.compute_seconds(w), 2.0 + 5.0);
}

TEST(NetworkModelTest, P2pLatencyPlusBandwidth) {
  const NetworkModel n{"test", 1e-4, 1e7};
  EXPECT_DOUBLE_EQ(n.p2p_seconds(1e7, 10), 10 * 1e-4 + 1.0);
}

TEST(NetworkModelTest, CollectiveFreeOnOneRank) {
  const NetworkModel n{"test", 1e-4, 1e7};
  EXPECT_DOUBLE_EQ(n.collective_seconds(1, 100, 1e6), 0.0);
}

TEST(NetworkModelTest, CollectiveScalesLogarithmically) {
  const NetworkModel n{"test", 1e-4, 1e7};
  const double t2 = n.collective_seconds(2, 10, 0);
  const double t4 = n.collective_seconds(4, 10, 0);
  const double t8 = n.collective_seconds(8, 10, 0);
  EXPECT_DOUBLE_EQ(t4, 2 * t2);
  EXPECT_DOUBLE_EQ(t8, 3 * t2);
}

TEST(PredictTest, PerfectlyBalancedScalesInversely) {
  const PlatformModel p = ultra_hpc_6000();
  // Total work fixed; split evenly over P ranks; SMP network is cheap.
  const double total_flops = 1e9;
  std::vector<double> times;
  for (int P : {1, 2, 4, 8}) {
    std::vector<par::WorkRecord> work(static_cast<std::size_t>(P),
                                      make_work(total_flops / P));
    times.push_back(predict_phase_seconds(p, work));
  }
  EXPECT_NEAR(times[0] / times[1], 2.0, 0.01);
  EXPECT_NEAR(times[0] / times[3], 8.0, 0.05);
}

TEST(PredictTest, CriticalPathIsMaxRank) {
  const PlatformModel p = ultra_hpc_6000();
  std::vector<par::WorkRecord> work{make_work(1e9), make_work(4e9), make_work(2e9)};
  const double t = predict_phase_seconds(p, work);
  std::vector<par::WorkRecord> only_max{make_work(4e9)};
  EXPECT_NEAR(t, predict_phase_seconds(p, only_max), 1e-9);
}

TEST(PredictTest, EthernetClusterPaysMoreForCollectives) {
  const PlatformModel eth = deep_flow_cluster();
  const PlatformModel smp = ultra_hpc_6000();
  // Same collective-heavy workload (no compute): Ethernet must cost more.
  std::vector<par::WorkRecord> work(8, make_work(0, 0, 0, 0, 1000, 8000));
  EXPECT_GT(predict_phase_seconds(eth, work), predict_phase_seconds(smp, work));
}

TEST(PredictTest, OverlappedTrafficHidesBehindCompute) {
  const PlatformModel p = deep_flow_cluster();
  // Compute dominates: a small overlapped halo is free, while the same halo
  // sent blocking adds its full p2p time.
  par::WorkRecord base = make_work(1e9);
  par::WorkRecord overlapped = base;
  overlapped.overlap_comm_bytes = 100.0;
  overlapped.overlap_comm_msgs = 1.0;
  par::WorkRecord blocking = make_work(1e9, 0, 100.0, 1.0);
  const std::vector<par::WorkRecord> w_base(2, base);
  const std::vector<par::WorkRecord> w_ov(2, overlapped);
  const std::vector<par::WorkRecord> w_bl(2, blocking);
  EXPECT_DOUBLE_EQ(predict_phase_seconds(p, w_ov), predict_phase_seconds(p, w_base));
  EXPECT_GT(predict_phase_seconds(p, w_bl), predict_phase_seconds(p, w_ov));
}

TEST(PredictTest, OverlappedTrafficPaysOnlyTheExcess) {
  const PlatformModel p = deep_flow_cluster();
  // No compute to hide behind: overlapped and blocking cost the same.
  par::WorkRecord overlapped;
  overlapped.overlap_comm_bytes = 1e7;
  overlapped.overlap_comm_msgs = 10.0;
  const par::WorkRecord blocking = make_work(0, 0, 1e7, 10.0);
  const std::vector<par::WorkRecord> w_ov(2, overlapped);
  const std::vector<par::WorkRecord> w_bl(2, blocking);
  EXPECT_DOUBLE_EQ(predict_phase_seconds(p, w_ov), predict_phase_seconds(p, w_bl));
}

TEST(PredictTest, OverlapIsFreeOnOneRank) {
  const PlatformModel p = deep_flow_cluster();
  par::WorkRecord w = make_work(1e6);
  w.overlap_comm_bytes = 1e9;
  w.overlap_comm_msgs = 100.0;
  const std::vector<par::WorkRecord> one_overlapped{w};
  const std::vector<par::WorkRecord> one_plain{make_work(1e6)};
  EXPECT_DOUBLE_EQ(predict_phase_seconds(p, one_overlapped),
                   predict_phase_seconds(p, one_plain));
}

TEST(PredictTest, BatchedAllreducesCostLessThanSeparateOnes) {
  const PlatformModel eth = deep_flow_cluster();
  // Krylov fusion trades rounds for bytes: 30 scalar allreduces vs one
  // 30-component allreduce. Latency-bound Ethernet must prefer the batch.
  const std::vector<par::WorkRecord> separate(4, make_work(0, 0, 0, 0, 30.0, 240.0));
  const std::vector<par::WorkRecord> batched(4, make_work(0, 0, 0, 0, 1.0, 240.0));
  EXPECT_GT(predict_phase_seconds(eth, separate), predict_phase_seconds(eth, batched));
}

TEST(PredictTest, EmptyRankListRejected) {
  const PlatformModel p = ultra_hpc_6000();
  EXPECT_THROW(predict_phase_seconds(p, {}), CheckError);
}

TEST(ImbalanceTest, BalancedIsOne) {
  const MachineModel m{"t", 1e9, 1e9};
  std::vector<par::WorkRecord> work(4, make_work(100));
  EXPECT_DOUBLE_EQ(compute_imbalance(m, work), 1.0);
}

TEST(ImbalanceTest, MaxOverMean) {
  const MachineModel m{"t", 1e9, 1e9};
  std::vector<par::WorkRecord> work{make_work(100), make_work(300)};
  EXPECT_DOUBLE_EQ(compute_imbalance(m, work), 1.5);
}

TEST(PlatformsTest, FactoriesLookSane) {
  for (const auto& p :
       {deep_flow_cluster(), ultra_hpc_6000(), dual_ultra80_cluster()}) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.machine.flops_per_sec, 1e6);
    EXPECT_GT(p.net.bandwidth_bytes_per_sec, 1e5);
    EXPECT_GT(p.net.latency_sec, 0.0);
  }
}

TEST(PlatformsTest, DualUltra80UsesBusWithinOneBox) {
  const PlatformModel p = dual_ultra80_cluster();
  EXPECT_EQ(p.network_for(4).name, p.intra_box_net.name);
  EXPECT_EQ(p.network_for(8).name, p.net.name);
}

TEST(PlatformsTest, DeepFlowAlwaysCrossesEthernet) {
  const PlatformModel p = deep_flow_cluster();
  EXPECT_EQ(p.network_for(2).name, "Fast Ethernet");
  EXPECT_EQ(p.network_for(16).name, "Fast Ethernet");
}

}  // namespace
}  // namespace neuro::perf

// Tests for the synthetic neurosurgery phantom: anatomy, intensities,
// determinism, and the analytic brain-shift ground truth.
#include <gtest/gtest.h>

#include <map>

#include "phantom/brain_phantom.h"

namespace neuro::phantom {
namespace {

PhantomConfig small_config() {
  PhantomConfig c;
  c.dims = {40, 40, 40};
  c.spacing = {3.0, 3.0, 3.0};
  return c;
}

TEST(GeometryTest, TissueNesting) {
  const BrainGeometry geo(small_config());
  const Vec3 c = geo.head_center();
  EXPECT_EQ(geo.tissue_at(c + Vec3{1000, 0, 0}), Tissue::kBackground);
  EXPECT_EQ(geo.tissue_at(c + Vec3{20, 0, 0}), Tissue::kBrain);
  EXPECT_EQ(geo.tissue_at(geo.tumor_center()), Tissue::kTumor);
}

TEST(GeometryTest, FalxOnMidplaneUpperHalf) {
  PhantomConfig cfg = small_config();
  const BrainGeometry geo(cfg);
  const Vec3 c = geo.head_center();
  EXPECT_EQ(geo.tissue_at({c.x, c.y, c.z + 10}), Tissue::kFalx);
  cfg.with_falx = false;
  const BrainGeometry geo2(cfg);
  EXPECT_EQ(geo2.tissue_at({c.x, c.y, c.z + 10}), Tissue::kBrain);
}

TEST(GeometryTest, TumorToggle) {
  PhantomConfig cfg = small_config();
  cfg.with_tumor = false;
  const BrainGeometry geo(cfg);
  EXPECT_NE(geo.tissue_at(geo.tumor_center()), Tissue::kTumor);
}

TEST(GeometryTest, BrainInteriorWeightProfile) {
  const BrainGeometry geo(small_config());
  const Vec3 c = geo.head_center();
  EXPECT_NEAR(geo.brain_interior_weight(c), 1.0, 1e-9);
  EXPECT_NEAR(geo.brain_interior_weight(c + Vec3{1000, 0, 0}), 0.0, 1e-9);
}

TEST(ShiftTest, ZeroAtSkullBaseMaxNearCraniotomy) {
  const BrainGeometry geo(small_config());
  ShiftConfig shift;
  const Vec3 c = geo.head_center();
  const Vec3 near_top{geo.craniotomy_center().x, geo.craniotomy_center().y,
                      c.z + 20.0};
  const Vec3 base{c.x, c.y, c.z - 30.0};
  EXPECT_GT(geo.shift_at(near_top, shift).z, 1.0);
  EXPECT_LT(norm(geo.shift_at(base, shift)), 0.8);
  EXPECT_EQ(norm(geo.shift_at(c + Vec3{500, 0, 0}, shift)), 0.0);
}

TEST(ShiftTest, BackwardFieldPointsUp) {
  // The brain sinks; the backward map must point from intraop points up
  // toward where the tissue came from.
  const BrainGeometry geo(small_config());
  ShiftConfig shift;
  shift.resect_tumor = false;  // isolate the sinking term
  const Vec3 p{geo.craniotomy_center().x, geo.craniotomy_center().y,
               geo.head_center().z + 15.0};
  const Vec3 v = geo.shift_at(p, shift);
  EXPECT_GT(v.z, 0.0);
  EXPECT_NEAR(v.x, 0.0, 1e-9);
}

TEST(ShiftTest, ResectionCollapsePointsAwayFromCavity) {
  const BrainGeometry geo(small_config());
  ShiftConfig shift;
  shift.max_sink_mm = 0.0;  // isolate the collapse term
  const Vec3 tc = geo.tumor_center();
  const Vec3 p = tc + Vec3{-10.0, 0, 0};
  const Vec3 v = geo.shift_at(p, shift);
  EXPECT_LT(v.x, 0.0);  // backward field points away from the cavity
}

TEST(ShiftTest, MagnitudeBoundedByConfig) {
  const BrainGeometry geo(small_config());
  ShiftConfig shift;
  const Vec3 c = geo.head_center();
  for (double z = -40; z <= 40; z += 5) {
    for (double x = -40; x <= 40; x += 5) {
      const Vec3 v = geo.shift_at(c + Vec3{x, 0, z}, shift);
      EXPECT_LE(norm(v), shift.max_sink_mm + shift.resection_collapse_mm + 1e-9);
    }
  }
}

TEST(IntensityTest, PaperContrastOrdering) {
  // "the skin bright, the brain gray and the lateral ventricles dark"
  EXPECT_GT(tissue_intensity(Tissue::kSkin), tissue_intensity(Tissue::kBrain));
  EXPECT_GT(tissue_intensity(Tissue::kBrain), tissue_intensity(Tissue::kVentricle));
  EXPECT_GT(tissue_intensity(Tissue::kVentricle),
            tissue_intensity(Tissue::kBackground));
}

TEST(RenderTest, MapsLabelsToIntensities) {
  ImageL labels({2, 2, 2}, label(Tissue::kBrain));
  labels.at(0, 0, 0) = label(Tissue::kSkin);
  const ImageF img = render_intensities(labels);
  EXPECT_FLOAT_EQ(img.at(0, 0, 0),
                  static_cast<float>(tissue_intensity(Tissue::kSkin)));
  EXPECT_FLOAT_EQ(img.at(1, 1, 1),
                  static_cast<float>(tissue_intensity(Tissue::kBrain)));
}

TEST(CaseTest, DeterministicForSeed) {
  const PhantomConfig cfg = small_config();
  ShiftConfig shift;
  const PhantomCase a = make_case(cfg, shift);
  const PhantomCase b = make_case(cfg, shift);
  EXPECT_EQ(a.preop.data(), b.preop.data());
  EXPECT_EQ(a.intraop.data(), b.intraop.data());
  EXPECT_EQ(a.preop_labels.data(), b.preop_labels.data());
}

TEST(CaseTest, SeedChangesNoiseNotLabels) {
  PhantomConfig cfg = small_config();
  ShiftConfig shift;
  const PhantomCase a = make_case(cfg, shift);
  cfg.seed = 1234;
  const PhantomCase b = make_case(cfg, shift);
  EXPECT_EQ(a.preop_labels.data(), b.preop_labels.data());
  EXPECT_NE(a.preop.data(), b.preop.data());
}

TEST(CaseTest, AllTissuesPresent) {
  const PhantomCase c = make_case(small_config(), ShiftConfig{});
  std::map<std::uint8_t, int> counts;
  for (const auto l : c.preop_labels.data()) ++counts[l];
  for (const Tissue t : {Tissue::kBackground, Tissue::kSkin, Tissue::kSkullGap,
                         Tissue::kBrain, Tissue::kVentricle, Tissue::kFalx,
                         Tissue::kTumor}) {
    EXPECT_GT(counts[label(t)], 0) << "missing tissue " << static_cast<int>(label(t));
  }
  EXPECT_GT(counts[label(Tissue::kBrain)], counts[label(Tissue::kVentricle)]);
}

TEST(CaseTest, ResectionRemovesTumorFromIntraop) {
  const PhantomCase c = make_case(small_config(), ShiftConfig{});
  int tumor_voxels = 0;
  for (const auto l : c.intraop_labels.data()) {
    tumor_voxels += l == label(Tissue::kTumor);
  }
  EXPECT_EQ(tumor_voxels, 0);
}

TEST(CaseTest, NoResectionKeepsTumor) {
  ShiftConfig shift;
  shift.resect_tumor = false;
  const PhantomCase c = make_case(small_config(), shift);
  int tumor_voxels = 0;
  for (const auto l : c.intraop_labels.data()) {
    tumor_voxels += l == label(Tissue::kTumor);
  }
  EXPECT_GT(tumor_voxels, 0);
}

TEST(CaseTest, TrueShiftConsistentWithLabelWarp) {
  // intraop_labels(y) must equal the (resection-adjusted) preop tissue at
  // y + v_true(y) — the stored field is exactly the warp that was applied.
  const PhantomConfig cfg = small_config();
  const PhantomCase c = make_case(cfg, ShiftConfig{});
  const IVec3 d = cfg.dims;
  for (int k = 2; k < d.z - 2; k += 3) {
    for (int j = 2; j < d.y - 2; j += 3) {
      for (int i = 2; i < d.x - 2; i += 3) {
        const Vec3 y = c.intraop_labels.voxel_to_physical(i, j, k);
        const Vec3 x = y + c.true_backward_shift(i, j, k);
        Tissue t = c.geometry.tissue_at(x);
        if (t == Tissue::kTumor) t = Tissue::kBackground;
        // CSF-fill rule (see make_case): intracranial points sourcing from
        // skin/air image as CSF unless they are the resection cavity.
        if ((t == Tissue::kSkin || t == Tissue::kBackground) &&
            c.geometry.inside_skull(y) &&
            !(norm(x - c.geometry.tumor_center()) <= c.geometry.tumor_radius())) {
          t = Tissue::kSkullGap;
        }
        ASSERT_EQ(c.intraop_labels(i, j, k), label(t))
            << "at voxel " << i << ',' << j << ',' << k;
      }
    }
  }
}

TEST(CaseTest, RigidOffsetComposesIntoTrueField) {
  RigidTransform offset;
  offset.translation = {4.0, 0.0, 0.0};
  const PhantomCase c = make_case(small_config(), ShiftConfig{}, offset);
  // Far from the brain (background corner) the shift term vanishes, so the
  // true backward field equals the rigid part: x - y = R⁻¹(y) - y = -t.
  const Vec3 v = c.true_backward_shift(1, 1, 1);
  EXPECT_NEAR(v.x, -4.0, 1e-9);
  EXPECT_NEAR(v.y, 0.0, 1e-9);
}

TEST(CaseTest, IntraopShowsSunkenSurface) {
  // Along the craniotomy axis, the first brain voxel from the top must be
  // lower in the intraop scan than in the preop scan.
  const PhantomCase c = make_case(small_config(), ShiftConfig{});
  const Vec3 cc = c.geometry.craniotomy_center();
  const Vec3 vox = c.preop_labels.physical_to_voxel({cc.x, cc.y, 0.0});
  const int i = static_cast<int>(vox.x + 0.5), j = static_cast<int>(vox.y + 0.5);
  auto is_brainish = [](std::uint8_t l) { return l >= 3 && l <= 6; };
  auto top_of_brain = [&](const ImageL& labels) {
    for (int k = labels.dims().z - 1; k >= 0; --k) {
      if (is_brainish(labels(i, j, k))) return k;
    }
    return -1;
  };
  const int top_pre = top_of_brain(c.preop_labels);
  const int top_intra = top_of_brain(c.intraop_labels);
  ASSERT_GE(top_pre, 0);
  ASSERT_GE(top_intra, 0);
  EXPECT_LT(top_intra, top_pre);
}

}  // namespace
}  // namespace neuro::phantom

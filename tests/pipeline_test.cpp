// Integration tests: the full intraoperative pipeline on phantom cases —
// the system-level claims of the paper on data with known ground truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "phantom/brain_phantom.h"

namespace neuro::core {
namespace {

/// One shared small case + pipeline run (the pipeline is the expensive part).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    phantom::PhantomConfig pcfg;
    pcfg.dims = {56, 56, 56};
    pcfg.spacing = {2.5, 2.5, 2.5};
    case_ = new phantom::PhantomCase(phantom::make_case(pcfg, phantom::ShiftConfig{}));

    PipelineConfig config = default_pipeline_config();
    config.do_rigid_registration = false;
    config.fem.nranks = 2;
    result_ = new PipelineResult(run_intraop_pipeline(
        case_->preop, case_->preop_labels, case_->intraop, config));
    report_ = new AccuracyReport(evaluate_against_truth(*result_, *case_));
  }
  static void TearDownTestSuite() {
    delete report_;
    delete result_;
    delete case_;
    report_ = nullptr;
    result_ = nullptr;
    case_ = nullptr;
  }

  static phantom::PhantomCase* case_;
  static PipelineResult* result_;
  static AccuracyReport* report_;
};
phantom::PhantomCase* PipelineTest::case_ = nullptr;
PipelineResult* PipelineTest::result_ = nullptr;
AccuracyReport* PipelineTest::report_ = nullptr;

TEST_F(PipelineTest, FemSolveConverges) {
  EXPECT_TRUE(result_->fem.stats.converged);
  EXPECT_LT(result_->fem.stats.relative_residual(), 1e-6);
  EXPECT_GT(result_->fem.num_equations, 0);
}

TEST_F(PipelineTest, TimelineHasAllFigSixStages) {
  for (const char* stage :
       {"rigid_registration", "tissue_classification", "surface_displacement",
        "biomechanical_simulation", "visualization_resample"}) {
    EXPECT_NO_THROW(static_cast<void>(result_->stage_seconds(stage))) << stage;
  }
  EXPECT_GT(result_->total_seconds, 0.0);
  EXPECT_THROW(static_cast<void>(result_->stage_seconds("no_such_stage")), CheckError);
}

TEST_F(PipelineTest, SegmentationTracksIntraopAnatomy) {
  EXPECT_GT(report_->brain_dice, 0.85);
}

TEST_F(PipelineTest, SurfaceMatchIsSubvoxel) {
  EXPECT_LT(report_->surface_residual_mm, 2.5);  // voxels are 2.5 mm
}

TEST_F(PipelineTest, SimulationReducesDisplacementResidual) {
  // The paper's central claim, quantified: the biomechanically recovered
  // field explains most of the nonrigid residual that rigid registration
  // leaves behind.
  EXPECT_LT(report_->recovered_error.mean_mm,
            0.85 * report_->residual_rigid_only.mean_mm);
  EXPECT_LT(report_->recovered_error.max_mm, report_->residual_rigid_only.max_mm);
}

TEST_F(PipelineTest, SimulationImprovesBoundaryIntensityMatch) {
  // Fig. 4d evidence: "very small intensity differences at the boundary".
  EXPECT_LT(report_->mad_boundary_simulated, report_->mad_boundary_rigid_only);
}

TEST_F(PipelineTest, RecoveredSurfaceSinksUnderCraniotomy) {
  // Direction check: the FEM field near the craniotomy must point down.
  double min_uz = 0;
  for (const auto& u : result_->fem.node_displacements) {
    min_uz = std::min(min_uz, u.z);
  }
  EXPECT_LT(min_uz, -2.0);  // several mm of sinking recovered
}

TEST_F(PipelineTest, ForwardAndBackwardFieldsAreConsistent) {
  // v(y) ≈ -u(y + v(y)) where the forward field has support. The relation is
  // only approximate where y+v lands in the decaying extension ring outside
  // the mesh (large |v| near the brain-shift gap), so assert distribution
  // properties rather than a per-voxel bound.
  const IVec3 d = result_->forward_field.dims();
  std::vector<double> residuals;
  for (int k = 2; k < d.z - 2; k += 4) {
    for (int j = 2; j < d.y - 2; j += 4) {
      for (int i = 2; i < d.x - 2; i += 4) {
        const Vec3 v = result_->backward_field(i, j, k);
        if (norm(v) < 0.5) continue;
        const Vec3 y = result_->forward_field.voxel_to_physical(i, j, k);
        const Vec3 probe = result_->forward_field.physical_to_voxel(y + v);
        const Vec3 u = sample_trilinear_vec(result_->forward_field, probe);
        residuals.push_back(norm(u + v));
      }
    }
  }
  ASSERT_GT(residuals.size(), 10u);
  std::sort(residuals.begin(), residuals.end());
  const double median = residuals[residuals.size() / 2];
  const double p90 = residuals[residuals.size() * 9 / 10];
  EXPECT_LT(median, 1.0);   // well below a voxel where the field is genuine
  EXPECT_LT(p90, 3.0);      // extension-ring voxels stay bounded
  EXPECT_LT(residuals.back(), 6.0);
}

TEST(PipelineVariantsTest, MultiRankMatchesSingleRank) {
  phantom::PhantomConfig pcfg;
  pcfg.dims = {40, 40, 40};
  pcfg.spacing = {3.0, 3.0, 3.0};
  const auto cas = phantom::make_case(pcfg, phantom::ShiftConfig{});
  PipelineConfig config = default_pipeline_config();
  config.do_rigid_registration = false;

  config.fem.nranks = 1;
  const auto serial =
      run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);
  config.fem.nranks = 4;
  const auto parallel =
      run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);

  ASSERT_EQ(serial.fem.node_displacements.size(),
            parallel.fem.node_displacements.size());
  for (std::size_t n = 0; n < serial.fem.node_displacements.size(); ++n) {
    EXPECT_LT(
        norm(serial.fem.node_displacements[n] - parallel.fem.node_displacements[n]),
        1e-4);
  }
}

TEST(PipelineVariantsTest, RigidStageRecoversImposedOffset) {
  phantom::PhantomConfig pcfg;
  pcfg.dims = {40, 40, 40};
  pcfg.spacing = {3.0, 3.0, 3.0};
  RigidTransform offset;
  offset.translation = {5.0, -3.0, 0.0};
  const auto cas = phantom::make_case(pcfg, phantom::ShiftConfig{}, offset);

  PipelineConfig config = default_pipeline_config();
  config.do_rigid_registration = true;
  config.rigid.pyramid_levels = 2;
  const auto result =
      run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);
  const auto report = evaluate_against_truth(result, cas);
  // With the rigid offset recovered and the shift simulated, the residual
  // must be far below the raw offset magnitude (~6 mm).
  EXPECT_LT(report.recovered_error.mean_mm, 2.5);
}

TEST(PipelineVariantsTest, HeterogeneousMaterialsRun) {
  phantom::PhantomConfig pcfg;
  pcfg.dims = {40, 40, 40};
  pcfg.spacing = {3.0, 3.0, 3.0};
  const auto cas = phantom::make_case(pcfg, phantom::ShiftConfig{});
  PipelineConfig config = default_pipeline_config();
  config.do_rigid_registration = false;
  config.heterogeneous_materials = true;
  const auto result =
      run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);
  EXPECT_TRUE(result.fem.stats.converged);
  // The phantom's analytic field is not the solution of a heterogeneous
  // elasticity problem, so heterogeneity need not help here — it must only
  // stay in the same accuracy class as the homogeneous model.
  const auto report = evaluate_against_truth(result, cas);
  EXPECT_LT(report.recovered_error.mean_mm,
            1.3 * report.residual_rigid_only.mean_mm);
}

TEST(PipelineVariantsTest, MissingBrainLabelsRejected) {
  phantom::PhantomConfig pcfg;
  pcfg.dims = {32, 32, 32};
  const auto cas = phantom::make_case(pcfg, phantom::ShiftConfig{});
  PipelineConfig config;  // default-constructed: brain_labels empty
  EXPECT_THROW(
      run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config),
      CheckError);
}

}  // namespace
}  // namespace neuro::core

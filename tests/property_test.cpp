// Cross-module property sweeps (parameterized): mesher invariants over
// stride/size/label combinations, displacement-field round trips over random
// smooth fields, collective correctness over random payload sizes, and
// partitioner invariants over rank counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "base/rng.h"
#include "core/deformation_field.h"
#include "image/distance.h"
#include "mesh/mesher.h"
#include "mesh/partition.h"
#include "mesh/refine.h"
#include "mesh/tri_surface.h"
#include "par/communicator.h"
#include "phantom/brain_phantom.h"

namespace neuro {
namespace {

// ---------------------------------------------------------------- mesher ---

class MesherPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (dims, stride)

TEST_P(MesherPropertyTest, InvariantsHoldOnPhantomAnatomy) {
  const auto [dims, stride] = GetParam();
  phantom::PhantomConfig pc;
  pc.dims = {dims, dims, dims};
  pc.spacing = {120.0 / dims, 120.0 / dims, 120.0 / dims};
  const phantom::BrainGeometry geo(pc);
  ImageL labels(pc.dims, 0, pc.spacing);
  for (int k = 0; k < dims; ++k) {
    for (int j = 0; j < dims; ++j) {
      for (int i = 0; i < dims; ++i) {
        labels(i, j, k) =
            phantom::label(geo.tissue_at(labels.voxel_to_physical(i, j, k)));
      }
    }
  }
  mesh::MesherConfig cfg;
  cfg.stride = stride;
  cfg.keep_labels = {3, 4, 5, 6};
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, cfg);
  ASSERT_GT(mesh.num_tets(), 0);

  // Invariant 1: positive orientation everywhere.
  for (const mesh::TetId t : mesh.tet_ids()) {
    ASSERT_GT(mesh::tet_volume(mesh, t), 0.0);
  }
  // Invariant 2: conforming (faces shared at most twice).
  std::map<std::array<mesh::NodeId, 3>, int> faces;
  static constexpr int kF[4][3] = {{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}};
  for (const auto& tet : mesh.tets) {
    for (const auto& f : kF) {
      std::array<mesh::NodeId, 3> key{tet[static_cast<std::size_t>(f[0])],
                                      tet[static_cast<std::size_t>(f[1])],
                                      tet[static_cast<std::size_t>(f[2])]};
      std::sort(key.begin(), key.end());
      ++faces[key];
    }
  }
  for (const auto& [key, count] : faces) {
    ASSERT_LE(count, 2);
  }
  // Invariant 3: the extracted surface is closed — every edge bounds an even
  // number of boundary faces (2 on manifold patches; 4 at the voxel-scale
  // pinches thin anatomy like the falx creates, which are legitimate).
  const mesh::TriSurface surface = mesh::extract_boundary_surface(mesh, cfg.keep_labels);
  std::map<std::pair<mesh::VertId, mesh::VertId>, int> edges;
  for (const auto& tri : surface.triangles) {
    for (int e = 0; e < 3; ++e) {
      mesh::VertId a = tri[static_cast<std::size_t>(e)];
      mesh::VertId b = tri[static_cast<std::size_t>((e + 1) % 3)];
      if (b < a) std::swap(a, b);
      ++edges[{a, b}];
    }
  }
  for (const auto& [edge, count] : edges) {
    ASSERT_EQ(count % 2, 0);
    ASSERT_LE(count, 4);
  }
  // Invariant 4: uniform lattice tets are well shaped.
  EXPECT_GT(mesh::quality_stats(mesh).min_quality, 0.3);
}

INSTANTIATE_TEST_SUITE_P(DimsAndStrides, MesherPropertyTest,
                         ::testing::Values(std::make_tuple(32, 2),
                                           std::make_tuple(32, 3),
                                           std::make_tuple(40, 2),
                                           std::make_tuple(40, 4),
                                           std::make_tuple(48, 3)));

// ----------------------------------------------------- field round trips ---

class FieldRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(FieldRoundTripTest, InvertThenComposeIsNearIdentity) {
  // Random smooth field (sum of a few Gaussians, ≤ ~2.5 voxel displacement):
  // composing the inverse must land within interpolation error.
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 18;
  ImageV field({n, n, n});
  for (int blob = 0; blob < 3; ++blob) {
    const Vec3 c{rng.uniform(4, n - 4), rng.uniform(4, n - 4), rng.uniform(4, n - 4)};
    const Vec3 a{rng.uniform(-2, 2), rng.uniform(-2, 2), rng.uniform(-2, 2)};
    const double s2 = rng.uniform(6.0, 16.0);
    for (int k = 0; k < n; ++k) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < n; ++i) {
          const double w = std::exp(-norm2(Vec3(i, j, k) - c) / (2 * s2));
          field(i, j, k) += w * a;
        }
      }
    }
  }
  const ImageV inverse = core::invert_displacement_field(field, 25);
  double worst = 0.0;
  for (int k = 4; k < n - 4; ++k) {
    for (int j = 4; j < n - 4; ++j) {
      for (int i = 4; i < n - 4; ++i) {
        const Vec3 y{static_cast<double>(i), static_cast<double>(j),
                     static_cast<double>(k)};
        const Vec3 v = inverse(i, j, k);
        const Vec3 u = sample_trilinear_vec(field, y + v);
        worst = std::max(worst, norm(u + v));
      }
    }
  }
  EXPECT_LT(worst, 0.35) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldRoundTripTest, ::testing::Range(0, 6));

// ------------------------------------------------------------ collectives ---

class CollectiveStressTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveStressTest, MixedRandomTrafficStaysConsistent) {
  const int seed = GetParam();
  const int P = 2 + seed % 5;
  par::run_spmd(P, [&](par::Communicator& comm) {
    Rng rng(static_cast<std::uint64_t>(seed * 100 + comm.rank()));
    Rng shared(static_cast<std::uint64_t>(seed));  // same stream on all ranks
    for (int round = 0; round < 20; ++round) {
      const int op = static_cast<int>(shared.uniform_index(4));
      if (op == 0) {
        const double v = static_cast<double>(comm.rank() + round);
        EXPECT_DOUBLE_EQ(comm.allreduce_sum(v),
                         P * (P - 1) / 2.0 + P * round);
      } else if (op == 1) {
        const std::size_t len = shared.uniform_index(16);
        std::vector<int> mine(len, comm.rank());
        const auto all = comm.allgatherv(std::span<const int>(mine.data(), len));
        ASSERT_EQ(all.size(), len * static_cast<std::size_t>(P));
        if (len > 0) {
          EXPECT_EQ(all.front(), 0);
          EXPECT_EQ(all.back(), P - 1);
        }
      } else if (op == 2) {
        std::vector<double> data;
        const int root = static_cast<int>(shared.uniform_index(P));
        if (comm.rank() == root) {
          data.assign(5, static_cast<double>(round));
        }
        comm.broadcast(data, root);
        ASSERT_EQ(data.size(), 5u);
        EXPECT_DOUBLE_EQ(data[3], round);
      } else {
        // Ring exchange.
        const int next = (comm.rank() + 1) % P;
        const int prev = (comm.rank() + P - 1) % P;
        const std::vector<int> msg{comm.rank(), round};
        comm.send(next, round, std::span<const int>(msg.data(), msg.size()));
        const auto got = comm.recv<int>(prev, round);
        ASSERT_EQ(got.size(), 2u);
        EXPECT_EQ(got[0], prev);
        EXPECT_EQ(got[1], round);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectiveStressTest, ::testing::Range(0, 8));

// ------------------------------------------------------------- partition ---

class PartitionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionPropertyTest, WeightedPartitionInvariants) {
  const int nranks = GetParam();
  Rng rng(static_cast<std::uint64_t>(nranks));
  const int n = 200 + static_cast<int>(rng.uniform_index(300));
  std::vector<double> weights(static_cast<std::size_t>(n));
  for (auto& w : weights) w = rng.uniform(0.1, 10.0);

  const mesh::Partition p = mesh::partition_weighted(weights, nranks);
  ASSERT_EQ(p.nranks, nranks);
  // Coverage, contiguity, non-emptiness.
  mesh::NodeId covered{0};
  double total = 0, max_part = 0;
  for (const Rank r : p.rank_ids()) {
    const auto [b, e] = p.ranges[r];
    ASSERT_EQ(b, covered);
    ASSERT_GT(e, b);
    covered = e;
    double part = 0;
    for (const mesh::NodeId i : p.ranges[r]) part += weights[i.index()];
    total += part;
    max_part = std::max(max_part, part);
  }
  ASSERT_EQ(covered, mesh::NodeId{n});
  // Balance: no rank exceeds its fair share by more than one max element.
  const double fair = total / nranks;
  EXPECT_LT(max_part, fair + 10.0 + 1e-9);
  // owner_of agrees with the ranges on every node.
  for (int i = 0; i < n; i += 7) {
    const mesh::NodeId node{i};
    const Rank r = p.owner_of(node);
    EXPECT_GE(node, p.ranges[r].first);
    EXPECT_LT(node, p.ranges[r].second);
  }
}

TEST_P(PartitionPropertyTest, EveryNodeOwnedByExactlyOneRank) {
  // Round-trip property across all partitioners: owner_of is a total function
  // NodeId → Rank, and the per-rank ranges tile [0, n) with no gaps or
  // overlaps — i.e. every node is claimed by exactly one rank's range.
  const int nranks = GetParam();
  Rng rng(static_cast<std::uint64_t>(97 + nranks));
  const int n = std::max(nranks, 150 + static_cast<int>(rng.uniform_index(200)));
  std::vector<double> weights(static_cast<std::size_t>(n));
  for (auto& w : weights) w = rng.uniform(0.5, 2.0);

  for (const mesh::Partition& p : {mesh::partition_node_balanced(n, nranks),
                                   mesh::partition_weighted(weights, nranks)}) {
    ASSERT_EQ(p.nranks, nranks);
    std::vector<int> claims(static_cast<std::size_t>(n), 0);
    for (const Rank r : p.rank_ids()) {
      for (const mesh::NodeId node : p.ranges[r]) {
        ASSERT_LT(node, mesh::NodeId{n});
        ++claims[node.index()];
        EXPECT_EQ(p.owner_of(node), r);  // range membership ⇔ ownership
      }
    }
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(claims[static_cast<std::size_t>(i)], 1)
          << "node " << i << " claimed by " << claims[static_cast<std::size_t>(i)]
          << " ranks";
    }
    // The local row offsets of each rank tile [0, nodes_of(rank)) in order.
    for (const Rank r : p.rank_ids()) {
      int expected_offset = 0;
      for (const mesh::NodeId node : p.ranges[r]) {
        EXPECT_EQ(p.ranges[r].offset_of(node), expected_offset++);
      }
      EXPECT_EQ(expected_offset, p.nodes_of(r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, PartitionPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16));

// ------------------------------------------------------ refine + distance ---

TEST(RefineDistanceProperty, RefinedSurfaceStaysOnCoarseSurface) {
  // Refinement adds nodes only on existing faces/edges of the lattice mesh,
  // so every refined boundary vertex lies on the coarse boundary surface —
  // its distance to the coarse surface's zero level is ~0.
  ImageL labels({9, 9, 9}, 1, {2, 2, 2});
  mesh::MesherConfig cfg;
  cfg.stride = 4;
  const mesh::TetMesh coarse = mesh::mesh_labeled_volume(labels, cfg);
  const mesh::TetMesh fine = mesh::refine_uniform(coarse);
  const mesh::TriSurface coarse_surface = mesh::extract_boundary_surface(coarse, {1});
  const mesh::TriSurface fine_surface = mesh::extract_boundary_surface(fine, {1});
  // The block boundary is axis-aligned: check every fine vertex sits on it.
  const Aabb box = mesh::bounds(coarse);
  for (const auto& v : fine_surface.vertices) {
    const double dist = std::min(
        {std::abs(v.x - box.lo.x), std::abs(v.x - box.hi.x), std::abs(v.y - box.lo.y),
         std::abs(v.y - box.hi.y), std::abs(v.z - box.lo.z), std::abs(v.z - box.hi.z)});
    ASSERT_NEAR(dist, 0.0, 1e-12);
  }
  EXPECT_EQ(fine_surface.num_triangles(), 4 * coarse_surface.num_triangles());
}

}  // namespace
}  // namespace neuro

// Tests for uniform tetrahedral refinement: conformity, volume preservation,
// counts, label inheritance, quality bounds, and FEM convergence under
// refinement (the Fig. 9 "higher resolution mesh" pathway).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "base/check.h"
#include "fem/deformation_solver.h"
#include "mesh/mesher.h"
#include "mesh/refine.h"
#include "mesh/tri_surface.h"

namespace neuro::mesh {
namespace {

TetMesh single_tet() {
  TetMesh mesh;
  mesh.nodes = {{0, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 2}};
  mesh.tets = {{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}}};
  mesh.tet_labels = {7};
  return mesh;
}

TetMesh block(int n = 7, int stride = 2) {
  ImageL labels({n, n, n}, 1, {2, 2, 2});
  MesherConfig cfg;
  cfg.stride = stride;
  return mesh_labeled_volume(labels, cfg);
}

TEST(RefineTest, SingleTetSplitsIntoEight) {
  const TetMesh fine = refine_uniform(single_tet());
  EXPECT_EQ(fine.num_tets(), 8);
  EXPECT_EQ(fine.num_nodes(), 4 + 6);  // corners + edge midpoints
}

TEST(RefineTest, VolumeIsPreservedExactly) {
  const TetMesh coarse = block();
  const TetMesh fine = refine_uniform(coarse);
  EXPECT_NEAR(total_volume(fine), total_volume(coarse), 1e-9);
  const TetMesh finer = refine_uniform(fine);
  EXPECT_NEAR(total_volume(finer), total_volume(coarse), 1e-9);
}

TEST(RefineTest, AllChildrenPositivelyOriented) {
  const TetMesh fine = refine_uniform(block());
  for (const TetId t : fine.tet_ids()) {
    EXPECT_GT(tet_volume(fine, t), 0.0);
  }
}

TEST(RefineTest, LabelsInherited) {
  ImageL labels({7, 7, 7}, 1, {2, 2, 2});
  for (int k = 0; k < 7; ++k)
    for (int j = 0; j < 7; ++j)
      for (int i = 4; i < 7; ++i) labels(i, j, k) = 2;
  MesherConfig cfg;
  cfg.stride = 2;
  const TetMesh coarse = mesh_labeled_volume(labels, cfg);
  const TetMesh fine = refine_uniform(coarse);
  std::map<std::uint8_t, int> coarse_counts, fine_counts;
  for (const auto l : coarse.tet_labels) ++coarse_counts[l];
  for (const auto l : fine.tet_labels) ++fine_counts[l];
  for (const auto& [l, n] : coarse_counts) {
    EXPECT_EQ(fine_counts[l], 8 * n) << "label " << static_cast<int>(l);
  }
}

TEST(RefineTest, RefinedMeshIsConforming) {
  const TetMesh fine = refine_uniform(block(5, 2));
  std::map<std::array<NodeId, 3>, int> faces;
  static constexpr int kF[4][3] = {{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}};
  for (const auto& tet : fine.tets) {
    for (const auto& f : kF) {
      std::array<NodeId, 3> key{tet[static_cast<std::size_t>(f[0])],
                                tet[static_cast<std::size_t>(f[1])],
                                tet[static_cast<std::size_t>(f[2])]};
      std::sort(key.begin(), key.end());
      ++faces[key];
    }
  }
  for (const auto& [key, count] : faces) {
    EXPECT_GE(count, 1);
    EXPECT_LE(count, 2);
  }
}

TEST(RefineTest, SharedEdgesShareMidpoints) {
  // For the 5-tet lattice, refinement reuses cube corners, edge midpoints and
  // face centers but — unlike remeshing at half the stride — never introduces
  // cube-center nodes: node count equals the remeshed count minus one node
  // per coarse cell.
  const TetMesh coarse = block(9, 4);  // 2x2x2 cells
  const TetMesh fine = refine_uniform(coarse);
  const TetMesh remeshed = block(9, 2);
  EXPECT_EQ(fine.num_nodes(), remeshed.num_nodes() - 8);
  EXPECT_EQ(fine.num_tets(), 8 * coarse.num_tets());
  // Midpoint dedup: a fully duplicated-midpoint refinement would have
  // 4 + 6 nodes per tet; sharing must do far better.
  EXPECT_LT(fine.num_nodes(), 10 * coarse.num_tets() / 2);
}

TEST(RefineTest, QualityBoundedBelow) {
  // Bey-style refinement cycles through a bounded set of shapes: quality must
  // not collapse under repeated refinement.
  TetMesh mesh = single_tet();
  const double q0 = quality_stats(mesh).min_quality;
  for (int level = 0; level < 3; ++level) mesh = refine_uniform(mesh);
  EXPECT_GT(quality_stats(mesh).min_quality, 0.4 * q0);
}

TEST(RefineTest, MultiLevelHelper) {
  const TetMesh fine = refine_uniform(single_tet(), 2);
  EXPECT_EQ(fine.num_tets(), 64);
  EXPECT_EQ(refine_uniform(single_tet(), 0).num_tets(), 1);
  EXPECT_THROW(refine_uniform(single_tet(), -1), CheckError);
}

TEST(RefineTest, FemSolutionConvergesUnderRefinement) {
  // A smooth non-affine Dirichlet problem: the refined mesh must reproduce
  // the boundary-driven field at least as accurately as the coarse one at
  // shared nodes (interior interpolation error shrinks).
  const TetMesh coarse = block(7, 2);
  const TetMesh fine = refine_uniform(coarse);
  auto smooth_field = [](const Vec3& p) {
    return Vec3{0.02 * std::sin(0.3 * p.x) * p.z, 0.0, -0.03 * std::cos(0.25 * p.y)};
  };
  auto solve_on = [&](const TetMesh& mesh) {
    const auto surface = extract_boundary_surface(mesh, {1});
    std::vector<std::pair<NodeId, Vec3>> bcs;
    for (const auto n : surface.mesh_nodes) {
      bcs.emplace_back(n, smooth_field(mesh.nodes[n]));
    }
    fem::DeformationSolveOptions opt;
    opt.solver.rtol = 1e-10;
    return fem::solve_deformation(mesh, fem::MaterialMap::homogeneous_brain(), bcs,
                                  opt);
  };
  const auto coarse_solution = solve_on(coarse);
  const auto fine_solution = solve_on(fine);
  EXPECT_TRUE(coarse_solution.stats.converged);
  EXPECT_TRUE(fine_solution.stats.converged);
  // Original nodes keep their ids in the refined mesh; solutions there must
  // agree to within the discretization error of the coarse mesh.
  double max_diff = 0.0;
  for (int n = 0; n < coarse.num_nodes(); ++n) {
    max_diff = std::max(
        max_diff, norm(coarse_solution.node_displacements[static_cast<std::size_t>(n)] -
                       fine_solution.node_displacements[static_cast<std::size_t>(n)]));
  }
  EXPECT_LT(max_diff, 0.05);
  EXPECT_EQ(fine_solution.num_equations, 3 * fine.num_nodes());
}

}  // namespace
}  // namespace neuro::mesh

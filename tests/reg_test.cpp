// Tests for mutual information and MI-based rigid registration.
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "base/rng.h"
#include "phantom/brain_phantom.h"
#include "reg/mutual_information.h"
#include "reg/rigid_registration.h"

namespace neuro::reg {
namespace {

TEST(JointHistogramTest, EntropiesOfUniformAndDelta) {
  JointHistogram h(4, 0, 4, 0, 4);
  // Four samples on the diagonal, one per bin: marginals uniform, joint
  // entropy = marginal entropy ⇒ MI = H.
  for (int i = 0; i < 4; ++i) h.add(i + 0.5, i + 0.5);
  EXPECT_NEAR(h.fixed_entropy(), std::log(4.0), 1e-12);
  EXPECT_NEAR(h.moving_entropy(), std::log(4.0), 1e-12);
  EXPECT_NEAR(h.joint_entropy(), std::log(4.0), 1e-12);
  EXPECT_NEAR(h.mutual_information(), std::log(4.0), 1e-12);
}

TEST(JointHistogramTest, IndependentVariablesHaveZeroMi) {
  JointHistogram h(2, 0, 2, 0, 2);
  // All four (fixed, moving) bin combinations equally likely.
  h.add(0.5, 0.5);
  h.add(0.5, 1.5);
  h.add(1.5, 0.5);
  h.add(1.5, 1.5);
  EXPECT_NEAR(h.mutual_information(), 0.0, 1e-12);
}

TEST(JointHistogramTest, EmptyHistogramIsZeroEntropy) {
  JointHistogram h(8, 0, 1, 0, 1);
  EXPECT_DOUBLE_EQ(h.joint_entropy(), 0.0);
  EXPECT_DOUBLE_EQ(h.mutual_information(), 0.0);
}

TEST(JointHistogramTest, ClearResets) {
  JointHistogram h(4, 0, 4, 0, 4);
  h.add(1, 1);
  EXPECT_EQ(h.samples(), 1u);
  h.clear();
  EXPECT_EQ(h.samples(), 0u);
}

TEST(JointHistogramTest, OutOfRangeValuesClampToEdgeBins) {
  JointHistogram h(4, 0, 4, 0, 4);
  h.add(-100, 100);  // must not crash or index out of bounds
  EXPECT_EQ(h.samples(), 1u);
}

TEST(JointHistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(JointHistogram(1, 0, 1, 0, 1), CheckError);
  EXPECT_THROW(JointHistogram(8, 1, 1, 0, 1), CheckError);
}

ImageF structured_volume(int n, std::uint64_t seed) {
  ImageF img({n, n, n});
  Rng rng(seed);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        // Smooth structure + noise: enough content for MI to be informative.
        img(i, j, k) = static_cast<float>(
            100.0 * std::sin(0.4 * i) * std::cos(0.3 * j) + 20.0 * std::sin(0.5 * k) +
            rng.normal());
      }
    }
  }
  return img;
}

TEST(MutualInformationTest, SelfAlignmentIsMaximal) {
  const ImageF img = structured_volume(24, 1);
  MiConfig cfg;
  const double aligned = mutual_information(img, img, RigidTransform{}, cfg);
  RigidTransform shifted;
  shifted.translation = {3.0, 0.0, 0.0};
  const double misaligned = mutual_information(img, img, shifted, cfg);
  EXPECT_GT(aligned, misaligned);
}

TEST(MutualInformationTest, DecreasesMonotonicallyNearOptimum) {
  const ImageF img = structured_volume(24, 2);
  MiConfig cfg;
  double prev = mutual_information(img, img, RigidTransform{}, cfg);
  for (double t : {1.0, 2.0, 4.0}) {
    RigidTransform shifted;
    shifted.translation = {t, 0.0, 0.0};
    const double mi = mutual_information(img, img, shifted, cfg);
    EXPECT_LT(mi, prev);
    prev = mi;
  }
}

TEST(MutualInformationTest, RobustToIntensityRemapping) {
  // MI (unlike SSD) must still peak at alignment when one image's
  // intensities are nonlinearly remapped — the multi-modality property the
  // paper relies on for preop/intraop matching.
  const ImageF a = structured_volume(24, 3);
  ImageF b = a;
  for (auto& v : b.data()) v = std::tanh(v / 50.0f) * 100.0f;  // monotone remap
  MiConfig cfg;
  const double aligned = mutual_information(a, b, RigidTransform{}, cfg);
  RigidTransform shifted;
  shifted.translation = {2.5, 1.0, 0.0};
  EXPECT_GT(aligned, mutual_information(a, b, shifted, cfg));
}

TEST(IntensityRangeTest, FindsMinMax) {
  ImageF img({2, 2, 2}, 5.0f);
  img.at(0, 0, 0) = -3.0f;
  img.at(1, 1, 1) = 9.0f;
  const auto [lo, hi] = intensity_range(img);
  EXPECT_DOUBLE_EQ(lo, -3.0);
  EXPECT_DOUBLE_EQ(hi, 9.0);
}

class RigidRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(RigidRecoveryTest, RecoversKnownOffset) {
  // Build a phantom pair whose only difference is a known rigid offset (no
  // brain shift), register, and check the offset is recovered.
  phantom::PhantomConfig cfg;
  cfg.dims = {36, 36, 36};
  cfg.spacing = {3.5, 3.5, 3.5};
  phantom::ShiftConfig noshift;
  noshift.max_sink_mm = 0.0;
  noshift.resection_collapse_mm = 0.0;
  noshift.resect_tumor = false;

  RigidTransform truth;
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  truth.translation = {rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-4, 4)};
  truth.rotation = {rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05),
                    rng.uniform(-0.05, 0.05)};
  const auto cas = phantom::make_case(cfg, noshift, truth);

  RigidRegistrationConfig rcfg;
  rcfg.pyramid_levels = 2;
  rcfg.powell_iterations = 6;
  const auto result = register_rigid_mi(cas.intraop, cas.preop, rcfg);

  // The registration maps intraop→preop points; ground truth: intraop voxel y
  // sees preop anatomy at R⁻¹(y). Check agreement at scattered points.
  double worst = 0.0;
  for (int t = 0; t < 30; ++t) {
    const Vec3 p{rng.uniform(40, 90), rng.uniform(40, 90), rng.uniform(40, 90)};
    worst = std::max(worst,
                     norm(result.transform.apply(p) - truth.apply_inverse(p)));
  }
  EXPECT_LT(worst, 3.0) << "registration error (mm), seed " << seed;
  EXPECT_GT(result.metric_evaluations, 0);
  EXPECT_EQ(result.level_mi.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(OffsetSweep, RigidRecoveryTest, ::testing::Range(0, 4));

TEST(RigidRegistrationTest, IdentityCaseStaysPut) {
  phantom::PhantomConfig cfg;
  cfg.dims = {32, 32, 32};
  cfg.spacing = {3.5, 3.5, 3.5};
  phantom::ShiftConfig noshift;
  noshift.max_sink_mm = 0.0;
  noshift.resection_collapse_mm = 0.0;
  noshift.resect_tumor = false;
  const auto cas = phantom::make_case(cfg, noshift);
  RigidRegistrationConfig rcfg;
  rcfg.pyramid_levels = 1;
  rcfg.powell_iterations = 2;
  const auto result = register_rigid_mi(cas.intraop, cas.preop, rcfg);
  const auto p = result.transform.params();
  EXPECT_LT(std::abs(p[3]) + std::abs(p[4]) + std::abs(p[5]), 2.0);
  EXPECT_LT(std::abs(p[0]) + std::abs(p[1]) + std::abs(p[2]), 0.05);
}

}  // namespace
}  // namespace neuro::reg

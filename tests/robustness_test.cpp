// Robustness suite (ctest label: robustness): the failure taxonomy, the
// seeded SPMD fault injector, bounded point-to-point waits, the solver
// watchdog, the field-validation gate, and the degradation ladder — ending
// with the pipeline-level guarantee: every injected fault class still yields
// a validated deformation field from a documented rung, with zero aborts and
// zero deadlocks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "base/deadline.h"
#include "base/status.h"
#include "base/stopwatch.h"
#include "core/surgery_session.h"
#include "fem/degradation.h"
#include "fem/field_validation.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "par/communicator.h"
#include "par/fault_inject.h"
#include "phantom/brain_phantom.h"
#include "solver/krylov.h"

namespace neuro::fem {
namespace {

// --- base: Status / Outcome / DeadlineBudget --------------------------------

TEST(StatusTest, TaxonomyNamesAndFormatting) {
  EXPECT_STREQ(base::status_code_name(base::StatusCode::kOk), "ok");
  EXPECT_STREQ(base::status_code_name(base::StatusCode::kCommFault), "comm_fault");
  const base::Status s{base::StatusCode::kSolverStagnated, "plateau at 3e-5"};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.to_string(), "solver_stagnated: plateau at 3e-5");
  EXPECT_TRUE(base::Status{}.ok());
}

TEST(StatusTest, OutcomeCarriesValueOrStatus) {
  base::Outcome<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  base::Outcome<int> bad(base::Status{base::StatusCode::kUnavailable, "nope"});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), base::StatusCode::kUnavailable);
  EXPECT_THROW(static_cast<void>(bad.value()), CheckError);
}

TEST(StatusTest, StatusErrorRoundTrips) {
  const base::Status s{base::StatusCode::kDeadlineExceeded, "10 s gone"};
  try {
    throw base::StatusError(s);
  } catch (const base::StatusError& e) {
    EXPECT_EQ(e.status().code(), base::StatusCode::kDeadlineExceeded);
    EXPECT_NE(std::string(e.what()).find("10 s gone"), std::string::npos);
  }
}

TEST(DeadlineBudgetTest, UnlimitedByDefault) {
  const base::DeadlineBudget budget;
  EXPECT_FALSE(budget.limited());
  EXPECT_FALSE(budget.expired());
  EXPECT_EQ(budget.remaining_seconds(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(budget.stage_allotment(0.5), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(budget.check("any_stage").ok());
  // Non-positive totals are the documented off switch.
  EXPECT_FALSE(base::DeadlineBudget(0.0).limited());
  EXPECT_FALSE(base::DeadlineBudget(-3.0).limited());
}

TEST(DeadlineBudgetTest, LimitedBudgetExpires) {
  const base::DeadlineBudget budget(1e-9);
  EXPECT_TRUE(budget.limited());
  while (!budget.expired()) {
  }
  EXPECT_EQ(budget.remaining_seconds(), 0.0);
  const base::Status s = budget.check("fem");
  EXPECT_EQ(s.code(), base::StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("fem"), std::string::npos);
}

TEST(DeadlineBudgetTest, StageAllotmentIsBoundedByRemaining) {
  const base::DeadlineBudget budget(100.0);
  EXPECT_NEAR(budget.stage_allotment(0.25), 25.0, 1.0);
  EXPECT_LE(budget.stage_allotment(2.0), 100.0);
}

// --- par: fault spec parsing and injector determinism -----------------------

TEST(FaultSpecTest, ParsesFullSpec) {
  const par::FaultConfig c =
      par::parse_fault_spec("drop:p=0.5:seed=7:rank=1:tag=3:max=9:delay_ms=4:timeout_ms=200");
  EXPECT_EQ(c.kind, par::FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(c.probability, 0.5);
  EXPECT_EQ(c.seed, 7u);
  EXPECT_EQ(c.rank, 1);
  EXPECT_EQ(c.tag, 3);
  EXPECT_EQ(c.max_faults, 9);
  EXPECT_DOUBLE_EQ(c.delay_ms, 4.0);
  EXPECT_DOUBLE_EQ(c.recv_timeout_ms, 200.0);
  EXPECT_TRUE(c.active());
}

TEST(FaultSpecTest, RejectsUnknownKindsAndKeys) {
  EXPECT_THROW(static_cast<void>(par::parse_fault_spec("gremlin")), CheckError);
  EXPECT_THROW(static_cast<void>(par::parse_fault_spec("drop:banana=1")), CheckError);
  EXPECT_THROW(static_cast<void>(par::parse_fault_spec("")), CheckError);
}

TEST(FaultInjectorTest, DecisionsAreSeedDeterministic) {
  par::FaultConfig config;
  config.kind = par::FaultKind::kDrop;
  config.probability = 0.4;
  config.seed = 1234;
  par::FaultInjector a(config), b(config);
  int faulted = 0;
  for (int i = 0; i < 200; ++i) {
    const auto action = a.on_send(0, 1, 7);
    EXPECT_EQ(action, b.on_send(0, 1, 7)) << "message " << i;
    if (action != par::FaultInjector::Action::kDeliver) ++faulted;
  }
  // Probability 0.4 over 200 messages: comfortably away from 0 and 200.
  EXPECT_GT(faulted, 20);
  EXPECT_LT(faulted, 180);
  EXPECT_EQ(a.faults_injected(), faulted);
}

TEST(FaultInjectorTest, FiltersByRankAndTagAndMax) {
  par::FaultConfig config;
  config.kind = par::FaultKind::kDrop;
  config.seed = 5;
  config.rank = 1;
  config.tag = 3;
  config.max_faults = 2;
  par::FaultInjector inj(config);
  EXPECT_EQ(inj.on_send(0, 1, 3), par::FaultInjector::Action::kDeliver);  // wrong src
  EXPECT_EQ(inj.on_send(1, 0, 9), par::FaultInjector::Action::kDeliver);  // wrong tag
  EXPECT_EQ(inj.on_send(1, 0, 3), par::FaultInjector::Action::kDrop);
  EXPECT_EQ(inj.on_send(1, 0, 3), par::FaultInjector::Action::kDrop);
  EXPECT_EQ(inj.on_send(1, 0, 3), par::FaultInjector::Action::kDeliver);  // max hit
  EXPECT_EQ(inj.faults_injected(), 2);
}

// --- par: bounded recv and fault propagation --------------------------------

/// Non-verify SpmdOptions with a fault campaign, so these assertions hold
/// regardless of the build's NEURO_PAR_VERIFY default.
par::SpmdOptions no_verify(par::FaultConfig fault = {}) {
  par::SpmdOptions options;
  options.verify = par::SpmdOptions::Verify::kOff;
  options.fault = fault;
  return options;
}

TEST(BoundedRecvTest, DroppedMessageTimesOutAsCommFault) {
  par::FaultConfig fault;
  fault.kind = par::FaultKind::kDrop;
  fault.seed = 1;
  fault.recv_timeout_ms = 150.0;
  Stopwatch sw;
  EXPECT_THROW(
      par::run_spmd(2, [](par::Communicator& comm) {
        if (comm.rank() == 1) {
          const std::vector<double> payload{1.0, 2.0};
          comm.send(0, 7, std::span<const double>(payload.data(), payload.size()));
        } else {
          static_cast<void>(comm.recv<double>(1, 7));
        }
      }, no_verify(fault)),
      par::CommFaultError);
  EXPECT_LT(sw.seconds(), 10.0);  // bounded, not the 30 s default
}

TEST(BoundedRecvTest, ExitedSenderFailsFastWithoutTimeout) {
  par::FaultConfig fault;
  fault.recv_timeout_ms = 30000.0;  // detection must NOT rely on the timeout
  fault.kind = par::FaultKind::kDelay;
  fault.probability = 0.0;  // active campaign, but never fires
  Stopwatch sw;
  EXPECT_THROW(
      par::run_spmd(2, [](par::Communicator& comm) {
        if (comm.rank() == 0) static_cast<void>(comm.recv<double>(1, 3));
        // Rank 1 exits immediately without sending.
      }, no_verify(fault)),
      par::CommFaultError);
  EXPECT_LT(sw.seconds(), 10.0);
}

TEST(BoundedRecvTest, FailedRankUnblocksPeersAtBarrier) {
  Stopwatch sw;
  EXPECT_THROW(
      par::run_spmd(2, [](par::Communicator& comm) {
        if (comm.rank() == 1) {
          throw base::StatusError(
              base::Status{base::StatusCode::kNumericalInvalid, "rank 1 died"});
        }
        comm.barrier();  // would deadlock without exit tracking
      }, no_verify()),
      base::StatusError);
  EXPECT_LT(sw.seconds(), 10.0);
}

TEST(FaultKindTest, DelayAndStallDeliverLate) {
  par::FaultConfig fault;
  fault.kind = par::FaultKind::kStallRank;
  fault.rank = 1;
  fault.delay_ms = 60.0;
  std::vector<double> received;
  Stopwatch sw;
  par::run_spmd(2, [&](par::Communicator& comm) {
    if (comm.rank() == 1) {
      const std::vector<double> payload{42.0};
      comm.send(0, 5, std::span<const double>(payload.data(), payload.size()));
    } else {
      received = comm.recv<double>(1, 5);
    }
  }, no_verify(fault));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_DOUBLE_EQ(received[0], 42.0);
  EXPECT_GE(sw.seconds(), 0.05);  // the stall actually happened
}

TEST(FaultKindTest, DuplicateDeliversTwice) {
  par::FaultConfig fault;
  fault.kind = par::FaultKind::kDuplicate;
  fault.seed = 3;
  par::run_spmd(2, [&](par::Communicator& comm) {
    if (comm.rank() == 1) {
      const std::vector<double> payload{1.5, 2.5};
      comm.send(0, 9, std::span<const double>(payload.data(), payload.size()));
    } else {
      const auto first = comm.recv<double>(1, 9);
      const auto second = comm.recv<double>(1, 9);  // the duplicate
      EXPECT_EQ(first, second);
    }
  }, no_verify(fault));
}

TEST(FaultKindTest, BitFlipCorruptsExactlyOneByte) {
  par::FaultConfig fault;
  fault.kind = par::FaultKind::kBitFlip;
  fault.seed = 11;
  par::run_spmd(2, [&](par::Communicator& comm) {
    if (comm.rank() == 1) {
      const std::vector<std::uint8_t> payload(64, 0xAB);
      comm.send(0, 2, std::span<const std::uint8_t>(payload.data(), payload.size()));
    } else {
      const auto data = comm.recv<std::uint8_t>(1, 2);
      int changed = 0;
      for (const std::uint8_t byte : data) {
        if (byte != 0xAB) ++changed;
      }
      EXPECT_EQ(changed, 1);
    }
  }, no_verify(fault));
}

// --- solver: watchdog -------------------------------------------------------

/// A small solid block mesh (same helper as fem_test).
mesh::TetMesh block_mesh(int n = 7, double spacing = 1.0, int stride = 2) {
  ImageL labels({n, n, n}, 1, {spacing, spacing, spacing});
  mesh::MesherConfig cfg;
  cfg.stride = stride;
  return mesh::mesh_labeled_volume(labels, cfg);
}

std::vector<std::pair<mesh::NodeId, Vec3>> boundary_shift(
    const mesh::TetMesh& mesh, const Vec3& shift) {
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) bcs.emplace_back(n, shift);
  return bcs;
}

TEST(WatchdogTest, StagnationStopsUnreachableTolerance) {
  // Large enough that GMRES cannot solve exactly within one restart cycle:
  // the residual plateaus at the round-off floor and the watchdog must stop.
  const mesh::TetMesh mesh = block_mesh(11);
  DeformationSolveOptions opt;
  opt.solver.rtol = 1e-30;  // unreachable: the residual must plateau
  opt.solver.atol = 0.0;
  opt.solver.watchdog.stagnation_window = 10;
  const DeformationResult result = solve_deformation(
      mesh, MaterialMap::homogeneous_brain(), boundary_shift(mesh, {0.1, 0, 0}), opt);
  EXPECT_FALSE(result.stats.converged);
  EXPECT_EQ(result.stats.stop_reason, solver::StopReason::kStagnated);
  EXPECT_LT(result.stats.iterations, opt.solver.max_iterations);
  EXPECT_FALSE(result.stats.stop_message.empty());
  // The best-so-far iterate is still a usable near-solution.
  EXPECT_LT(result.stats.relative_residual(), 1e-6);
}

TEST(WatchdogTest, DeadlineStopsLongSolve) {
  const mesh::TetMesh mesh = block_mesh(11);
  DeformationSolveOptions opt;
  opt.solver.rtol = 1e-30;
  opt.solver.atol = 0.0;
  opt.solver.watchdog.deadline_seconds = 1e-6;  // already gone at first check
  opt.solver.watchdog.deadline_check_interval = 1;
  const DeformationResult result = solve_deformation(
      mesh, MaterialMap::homogeneous_brain(), boundary_shift(mesh, {0.1, 0, 0}), opt);
  EXPECT_FALSE(result.stats.converged);
  EXPECT_EQ(result.stats.stop_reason, solver::StopReason::kDeadlineExceeded);
  EXPECT_LE(result.stats.iterations, 2);
}

TEST(WatchdogTest, NanRhsStopsAsNumericalInvalid) {
  const mesh::TetMesh mesh = block_mesh(5);
  DeformationSolveOptions opt;
  // A NaN boundary value poisons the right-hand side: the solve must stop
  // with a typed reason, not iterate to max_iterations on NaN residuals.
  auto bcs = boundary_shift(mesh, {0.1, 0, 0});
  bcs.front().second.x = std::numeric_limits<double>::quiet_NaN();
  const DeformationResult result =
      solve_deformation(mesh, MaterialMap::homogeneous_brain(), bcs, opt);
  EXPECT_FALSE(result.stats.converged);
  EXPECT_EQ(result.stats.stop_reason, solver::StopReason::kNumericalInvalid);
  EXPECT_LT(result.stats.iterations, 5);
}

TEST(WatchdogTest, HealthySolveIsUntouched) {
  // Default watchdog (finite + divergence checks only, no deadline): the
  // solve must behave exactly as before — converged, kConverged, no message.
  const mesh::TetMesh mesh = block_mesh(5);
  DeformationSolveOptions opt;
  const DeformationResult result = solve_deformation(
      mesh, MaterialMap::homogeneous_brain(), boundary_shift(mesh, {0.1, 0, 0}), opt);
  EXPECT_TRUE(result.stats.converged);
  EXPECT_EQ(result.stats.stop_reason, solver::StopReason::kConverged);
  EXPECT_TRUE(result.stats.stop_message.empty());
}

// --- fem: validation gate ---------------------------------------------------

TEST(FieldValidationTest, ZeroAndModestFieldsPass) {
  const mesh::TetMesh mesh = block_mesh(5);
  const std::vector<Vec3> zero(static_cast<std::size_t>(mesh.num_nodes()));
  const auto report = validate_displacement_field(mesh, zero);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.inverted_tets, 0);
  EXPECT_GT(report.mesh_diagonal, 0.0);
}

TEST(FieldValidationTest, NanFieldRejected) {
  const mesh::TetMesh mesh = block_mesh(5);
  std::vector<Vec3> field(static_cast<std::size_t>(mesh.num_nodes()));
  field[3].y = std::numeric_limits<double>::quiet_NaN();
  const auto report = validate_displacement_field(mesh, field);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.finite);
  EXPECT_EQ(report.status.code(), base::StatusCode::kNumericalInvalid);
}

TEST(FieldValidationTest, RunawayDisplacementRejected) {
  const mesh::TetMesh mesh = block_mesh(5);
  std::vector<Vec3> field(static_cast<std::size_t>(mesh.num_nodes()));
  field[0] = {1e6, 0, 0};
  const auto report = validate_displacement_field(mesh, field);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status.code(), base::StatusCode::kValidationFailed);
  EXPECT_GT(report.max_displacement, report.mesh_diagonal);
}

TEST(FieldValidationTest, InvertedTetRejected) {
  const mesh::TetMesh mesh = block_mesh(5);
  // Swap two nodes of the first tet: every incident tet inverts while the
  // displacement magnitude stays one edge length (well under the bound).
  const auto& tet = mesh.tets[mesh::TetId{0}];
  std::vector<Vec3> field(static_cast<std::size_t>(mesh.num_nodes()));
  const Vec3 a = mesh.nodes[tet[0]], b = mesh.nodes[tet[1]];
  field[tet[0].index()] = b - a;
  field[tet[1].index()] = a - b;
  const auto report = validate_displacement_field(mesh, field);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.inverted_tets, 0);
  EXPECT_EQ(report.status.code(), base::StatusCode::kValidationFailed);
}

TEST(FieldValidationTest, SizeMismatchIsAPreconditionFailure) {
  const mesh::TetMesh mesh = block_mesh(5);
  const std::vector<Vec3> wrong(3);
  EXPECT_THROW(static_cast<void>(validate_displacement_field(mesh, wrong)),
               CheckError);
}

// --- fem: degradation ladder ------------------------------------------------

class LadderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // 6x6x6 nodes: non-trivial interior, so a 2-rank partition has real halo
    // traffic for the fault campaigns to hit.
    mesh_ = new mesh::TetMesh(block_mesh(11));
    prescribed_ = new std::vector<std::pair<mesh::NodeId, Vec3>>(
        boundary_shift(*mesh_, {0.1, -0.05, 0.08}));
  }
  static void TearDownTestSuite() {
    delete prescribed_;
    delete mesh_;
    prescribed_ = nullptr;
    mesh_ = nullptr;
  }

  static base::Outcome<FallbackDeformationResult> run_ladder(
      const DeformationSolveOptions& options, const DegradationOptions& degrade,
      double budget_seconds = 0.0) {
    return solve_deformation_with_fallback(
        *mesh_, MaterialMap::homogeneous_brain(), *prescribed_, options, degrade,
        base::DeadlineBudget(budget_seconds));
  }

  static mesh::TetMesh* mesh_;
  static std::vector<std::pair<mesh::NodeId, Vec3>>* prescribed_;
};
mesh::TetMesh* LadderTest::mesh_ = nullptr;
std::vector<std::pair<mesh::NodeId, Vec3>>* LadderTest::prescribed_ = nullptr;

TEST_F(LadderTest, HealthySolveDoesNotDegrade) {
  const auto outcome = run_ladder({}, {});
  ASSERT_TRUE(outcome.ok());
  const auto& fb = outcome.value();
  EXPECT_FALSE(fb.report.degraded);
  EXPECT_EQ(fb.report.rung, DegradationRung::kFullSolve);
  ASSERT_EQ(fb.report.attempts.size(), 1u);
  EXPECT_TRUE(fb.report.attempts[0].status.ok());
  EXPECT_TRUE(fb.report.validation.ok());
  EXPECT_TRUE(fb.deformation.stats.converged);

  // The undegraded ladder result is bit-identical to the direct solve.
  const DeformationResult direct = solve_deformation(
      *mesh_, MaterialMap::homogeneous_brain(), *prescribed_, {});
  ASSERT_EQ(fb.deformation.node_displacements.size(),
            direct.node_displacements.size());
  for (std::size_t i = 0; i < direct.node_displacements.size(); ++i) {
    EXPECT_EQ(norm(fb.deformation.node_displacements[i] -
                   direct.node_displacements[i]),
              0.0);
  }
}

TEST_F(LadderTest, StagnationFallsToRelaxedSolve) {
  DeformationSolveOptions options;
  options.solver.rtol = 1e-30;  // rung 0 can never converge
  options.solver.atol = 0.0;
  options.solver.watchdog.stagnation_window = 10;
  DegradationOptions degrade;
  degrade.relaxed_rtol = 1e-5;  // rung 1 target is easily reachable
  const auto outcome = run_ladder(options, degrade);
  ASSERT_TRUE(outcome.ok());
  const auto& fb = outcome.value();
  EXPECT_TRUE(fb.report.degraded);
  EXPECT_EQ(fb.report.rung, DegradationRung::kRelaxedSolve);
  EXPECT_EQ(fb.report.trigger.code(), base::StatusCode::kSolverStagnated);
  ASSERT_EQ(fb.report.attempts.size(), 2u);
  EXPECT_TRUE(fb.report.validation.ok());
}

TEST_F(LadderTest, CommFaultFallsToBaselineInterpolation) {
  DeformationSolveOptions options;
  options.nranks = 2;
  options.fault_injection.kind = par::FaultKind::kDrop;
  options.fault_injection.seed = 42;
  options.fault_injection.recv_timeout_ms = 150.0;
  const auto outcome = run_ladder(options, {});
  ASSERT_TRUE(outcome.ok());
  const auto& fb = outcome.value();
  EXPECT_TRUE(fb.report.degraded);
  EXPECT_EQ(fb.report.rung, DegradationRung::kBaselineInterpolation);
  EXPECT_EQ(fb.report.trigger.code(), base::StatusCode::kCommFault);
  EXPECT_TRUE(fb.report.validation.ok());
  // The baseline carries the prescribed surface values exactly.
  for (const auto& [node, u] : *prescribed_) {
    EXPECT_LT(norm(fb.deformation.node_displacements[node.index()] - u), 1e-12);
  }
}

TEST_F(LadderTest, LastGoodIsTheFinalRung) {
  DeformationSolveOptions options;
  options.nranks = 2;
  options.fault_injection.kind = par::FaultKind::kDrop;
  options.fault_injection.seed = 42;
  options.fault_injection.recv_timeout_ms = 150.0;
  DegradationOptions degrade;
  degrade.allow_baseline = false;
  const std::vector<Vec3> checkpoint(static_cast<std::size_t>(mesh_->num_nodes()),
                                     Vec3{0.01, 0.0, 0.0});
  degrade.last_good = &checkpoint;
  const auto outcome = run_ladder(options, degrade);
  ASSERT_TRUE(outcome.ok());
  const auto& fb = outcome.value();
  EXPECT_EQ(fb.report.rung, DegradationRung::kLastGood);
  EXPECT_EQ(norm(fb.deformation.node_displacements[0] - Vec3{0.01, 0.0, 0.0}),
            0.0);
}

TEST_F(LadderTest, ExhaustedLadderReturnsTypedError) {
  DeformationSolveOptions options;
  options.nranks = 2;
  options.fault_injection.kind = par::FaultKind::kDrop;
  options.fault_injection.seed = 42;
  options.fault_injection.recv_timeout_ms = 150.0;
  DegradationOptions degrade;
  degrade.allow_baseline = false;  // and no last_good either
  const auto outcome = run_ladder(options, degrade);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), base::StatusCode::kUnavailable);
  EXPECT_NE(outcome.status().message().find("comm_fault"), std::string::npos);
}

/// The ISSUE's acceptance matrix: every injected fault class must end in a
/// validated field from a deterministic, documented rung — zero aborts, zero
/// deadlocks. (docs/robustness.md documents the expected rung per class.)
struct FaultCase {
  const char* name;
  par::FaultKind kind;
  double probability;
  double delay_ms;
  int rank;
};

TEST_F(LadderTest, FaultMatrixAlwaysYieldsValidatedField) {
  const FaultCase cases[] = {
      {"drop", par::FaultKind::kDrop, 1.0, 0.0, -1},
      {"delay", par::FaultKind::kDelay, 0.2, 5.0, -1},
      {"corrupt", par::FaultKind::kBitFlip, 1.0, 0.0, -1},
      {"stall", par::FaultKind::kStallRank, 1.0, 400.0, 1},
  };
  for (const FaultCase& fc : cases) {
    SCOPED_TRACE(fc.name);
    DeformationSolveOptions options;
    options.nranks = 2;
    options.fault_injection.kind = fc.kind;
    options.fault_injection.probability = fc.probability;
    options.fault_injection.seed = 7;
    options.fault_injection.delay_ms = fc.delay_ms;
    options.fault_injection.rank = fc.rank;
    options.fault_injection.recv_timeout_ms = 150.0;

    // Determinism: the same campaign twice lands on the same rung.
    const auto first = run_ladder(options, {});
    const auto second = run_ladder(options, {});
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value().report.rung, second.value().report.rung);
    EXPECT_EQ(first.value().report.degraded, second.value().report.degraded);

    // Property: whatever the rung, the field passed the gate — finite,
    // bounded, no inverted tets.
    const auto& field = first.value().deformation.node_displacements;
    const auto report = validate_displacement_field(*mesh_, field);
    EXPECT_TRUE(report.ok()) << report.status.to_string();
    EXPECT_EQ(report.inverted_tets, 0);
    for (const Vec3& u : field) EXPECT_TRUE(std::isfinite(norm(u)));
  }
  // The documented per-class rungs (docs/robustness.md): a total drop
  // campaign exhausts both solve rungs; a mild delay is absorbed by rung 0.
  DeformationSolveOptions drop;
  drop.nranks = 2;
  drop.fault_injection.kind = par::FaultKind::kDrop;
  drop.fault_injection.seed = 7;
  drop.fault_injection.recv_timeout_ms = 150.0;
  EXPECT_EQ(run_ladder(drop, {}).value().report.rung,
            DegradationRung::kBaselineInterpolation);
  DeformationSolveOptions delay;
  delay.nranks = 2;
  delay.fault_injection.kind = par::FaultKind::kDelay;
  delay.fault_injection.probability = 0.2;
  delay.fault_injection.seed = 7;
  delay.fault_injection.delay_ms = 5.0;
  delay.fault_injection.recv_timeout_ms = 500.0;
  EXPECT_EQ(run_ladder(delay, {}).value().report.rung,
            DegradationRung::kFullSolve);
}

// --- core: pipeline + session integration -----------------------------------

TEST(RobustPipelineTest, FaultedFemStageDegradesAndCheckpoints) {
  phantom::PhantomConfig pcfg;
  pcfg.dims = {40, 40, 40};
  pcfg.spacing = {3.5, 3.5, 3.5};
  const phantom::PhantomCase c = phantom::make_case(pcfg, phantom::ShiftConfig{});

  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = false;
  config.fem.nranks = 2;
  config.fem.fault_injection.kind = par::FaultKind::kDrop;
  config.fem.fault_injection.seed = 9;
  config.fem.fault_injection.recv_timeout_ms = 150.0;

  core::SurgerySession session(c.preop, c.preop_labels, config);
  const core::PipelineResult& result = session.process_scan(c.intraop);

  // The FEM stage degraded, but the pipeline still delivered a usable field
  // and timed every ladder attempt into the Fig. 6 timeline.
  EXPECT_TRUE(result.degradation.degraded);
  EXPECT_EQ(result.degradation.rung, fem::DegradationRung::kBaselineInterpolation);
  EXPECT_EQ(result.degradation.trigger.code(), base::StatusCode::kCommFault);
  EXPECT_TRUE(result.degradation.validation.ok());
  EXPECT_NO_THROW(static_cast<void>(
      result.stage_seconds("fem_fallback:baseline_interpolation")));
  EXPECT_GT(result.warped_preop.dims().x, 0);

  // The validated field was checkpointed for the next scan's kLastGood rung.
  EXPECT_EQ(session.last_good_field().size(),
            result.fem.node_displacements.size());
  const auto gate =
      validate_displacement_field(result.brain_mesh, session.last_good_field());
  EXPECT_TRUE(gate.ok());
}

}  // namespace
}  // namespace neuro::fem

// Stress tests for the concurrency-critical paths — the Communicator plus
// the obs instrumentation it drives — written so ThreadSanitizer has real
// interleavings to examine in CI: high rank counts, randomized message
// sizes, mixed collectives and point-to-point traffic, racing instrument
// registration. They cross-validate dynamically what the Clang thread-safety
// annotations (base/thread_annotations.h) enforce statically. The assertions
// double as correctness checks in uninstrumented builds.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "base/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/communicator.h"

namespace neuro::par {
namespace {

TEST(SanitizerRegressionTest, BarrierStormAtHighRankCount) {
  // Rapid-fire barriers exercise the sense-reversing logic across many
  // generations; any missed happens-before edge shows up as a TSan race on
  // the shared counter below.
  constexpr int P = 32;
  constexpr int kRounds = 200;
  std::vector<std::uint64_t> counters(P, 0);
  run_spmd(P, [&](Communicator& comm) {
    for (int round = 0; round < kRounds; ++round) {
      counters[static_cast<std::size_t>(comm.rank())] += 1;
      comm.barrier();
      // After the barrier every rank's increment for this round is visible.
      std::uint64_t total = 0;
      for (const auto c : counters) total += c;
      EXPECT_EQ(total, static_cast<std::uint64_t>(P) * (round + 1));
      comm.barrier();
    }
  });
}

TEST(SanitizerRegressionTest, RandomizedAllToAllMailboxTraffic) {
  // Every rank sends every other rank a randomized-size message per round;
  // payload contents encode (src, dst, round) so misrouted or torn messages
  // are detected, while the mailbox locking sees heavy contention.
  constexpr int P = 16;
  constexpr int kRounds = 8;
  run_spmd(P, [&](Communicator& comm) {
    Rng rng = Rng(0xfeedbeef).split(static_cast<std::uint64_t>(comm.rank()));
    for (int round = 0; round < kRounds; ++round) {
      for (int dst = 0; dst < P; ++dst) {
        if (dst == comm.rank()) continue;
        const auto len = 1 + rng.uniform_index(512);
        std::vector<std::uint32_t> payload(len);
        const auto stamp = static_cast<std::uint32_t>(
            comm.rank() * 1000000 + dst * 1000 + round);
        for (auto& v : payload) v = stamp;
        comm.send(dst, round, std::span<const std::uint32_t>(payload.data(),
                                                             payload.size()));
      }
      for (int src = 0; src < P; ++src) {
        if (src == comm.rank()) continue;
        const auto got = comm.recv<std::uint32_t>(src, round);
        ASSERT_FALSE(got.empty());
        const auto expected = static_cast<std::uint32_t>(
            src * 1000000 + comm.rank() * 1000 + round);
        for (const auto v : got) ASSERT_EQ(v, expected);
      }
      comm.barrier();
    }
  });
}

TEST(SanitizerRegressionTest, PublishReleaseUnderRandomizedSizes) {
  // Collectives with per-round randomized payload sizes: the slot
  // publish/read/release protocol must never let a rank read a slot outside
  // its publish window. Gathers are ragged on purpose.
  constexpr int P = 12;
  constexpr int kRounds = 32;
  run_spmd(P, [&](Communicator& comm) {
    Rng rng = Rng(0x5eed).split(static_cast<std::uint64_t>(comm.rank()));
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::int64_t> mine(rng.uniform_index(64) + 1,
                                     comm.rank() + round);
      const auto all =
          comm.allgatherv(std::span<const std::int64_t>(mine.data(), mine.size()));
      // Every rank's contribution appears, in rank order.
      std::size_t seen_ranks = 0;
      std::int64_t prev = -1;
      for (const auto v : all) {
        if (v != prev) {
          ++seen_ranks;
          EXPECT_EQ(v, static_cast<std::int64_t>(seen_ranks - 1 + round));
          prev = v;
        }
      }
      EXPECT_EQ(seen_ranks, static_cast<std::size_t>(P));
    }
  });
}

TEST(SanitizerRegressionTest, MixedCollectivesAndTrafficWithVerification) {
  // The verifier's bookkeeping itself must be race-free under TSan: run the
  // mixed workload with verification forced on.
  SpmdOptions opts;
  opts.verify = SpmdOptions::Verify::kOn;
  constexpr int P = 16;
  run_spmd(
      P,
      [&](Communicator& comm) {
        Rng rng = Rng(0xabc).split(static_cast<std::uint64_t>(comm.rank()));
        for (int round = 0; round < 16; ++round) {
          const double sum = comm.allreduce_sum(1.0);
          EXPECT_DOUBLE_EQ(sum, P);
          std::vector<int> data;
          const int root = round % P;
          if (comm.rank() == root) {
            data.assign(rng.uniform_index(32) + 1, round);
          }
          comm.broadcast(data, root);
          EXPECT_FALSE(data.empty());
          EXPECT_EQ(data.front(), round);
          const int next = (comm.rank() + 1) % P;
          const int prev = (comm.rank() + P - 1) % P;
          comm.send(next, round, std::span<const int>(data.data(), data.size()));
          const auto got = comm.recv<int>(prev, round);
          EXPECT_EQ(got, data);  // same round, same broadcast contents
        }
      },
      opts);
}

TEST(SanitizerRegressionTest, MetricsRegistryLookupAndRecordStorm) {
  // Every rank hammers the same small set of instrument names, so creation
  // races on the registry mutex while established ranks record through the
  // lock-free instrument atomics, and periodic re-lookups overlap both. This
  // is the dynamic counterpart of the NEURO_GUARDED_BY(mutex_) annotation on
  // the instrument map.
  constexpr int P = 16;
  constexpr int kRounds = 200;
  obs::MetricsRegistry registry;
  run_spmd(P, [&](Communicator& comm) {
    const std::vector<double> edges = {1.0, 8.0, 64.0};
    obs::Histogram& mine =
        registry.histogram("storm.latency", edges);  // captured once, hot path
    for (int round = 0; round < kRounds; ++round) {
      mine.observe(static_cast<double>(round % 100));
      // Re-lookup storm: same name from all ranks, plus a rank-striped name
      // so the map keeps growing while others read it.
      registry.counter("storm.events").add();
      registry.histogram("storm.latency", edges)
          .observe(static_cast<double>(comm.rank()));
      registry
          .counter("storm.rank." + std::to_string(comm.rank() % 4))
          .add();
      if (round % 50 == 0) {
        EXPECT_GE(registry.size(), 2u);
      }
    }
  });
  EXPECT_EQ(registry.counter("storm.events").value(),
            static_cast<std::int64_t>(P) * kRounds);
  EXPECT_EQ(registry.histogram("storm.latency", {1.0, 8.0, 64.0}).total_count(),
            2 * static_cast<std::int64_t>(P) * kRounds);
  EXPECT_EQ(registry.size(), 2u + 4u);  // latency + events + 4 striped
}

TEST(SanitizerRegressionTest, TracerParallelStreamRegistration) {
  // All rank threads hit stream_for_this_thread() at once on their first
  // span, racing the registration list guarded by streams_mutex_; the
  // per-thread buffers themselves are owner-thread-only by design. Snapshot
  // and clear run strictly after run_spmd joins (the quiescence contract).
  constexpr int P = 24;
  constexpr int kSpans = 64;
  // Under -DNEURO_OBS=OFF every span/counter is compiled out and nothing
  // registers or records; the storm still runs, the counts are just zero.
#ifdef NEURO_OBS_DISABLED
  constexpr std::size_t kPerRankEvents = 0;
  constexpr std::size_t kPerRankTimed = 0;
#else
  constexpr std::size_t kPerRankEvents = static_cast<std::size_t>(kSpans) * 2;
  constexpr std::size_t kPerRankTimed = 1;
#endif
  obs::Tracer tracer(/*enabled=*/true);
  run_spmd(P, [&](Communicator& comm) {
    for (int i = 0; i < kSpans; ++i) {
      obs::Span span = tracer.span("storm.work");
      tracer.counter("storm.gauge", static_cast<double>(comm.rank()));
    }
    comm.barrier();
  });
  EXPECT_EQ(tracer.event_count(), P * kPerRankEvents);
  EXPECT_EQ(tracer.dropped_count(), 0u);
  const auto events = tracer.snapshot();
  EXPECT_EQ(events.size(), tracer.event_count());
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  // A second team re-registers fresh streams against the surviving tracer.
  run_spmd(P, [&](Communicator& comm) {
    obs::Span span = tracer.timed_span("storm.second");
    comm.barrier();
  });
  EXPECT_EQ(tracer.event_count(), P * kPerRankTimed);
}

TEST(SanitizerRegressionTest, RepeatedTeamsDoNotLeak) {
  // Teams own mailboxes and threads; construct/destroy many so LeakSanitizer
  // sees the full lifecycle.
  for (int iter = 0; iter < 16; ++iter) {
    const auto work = run_spmd(8, [](Communicator& comm) {
      const int sum = comm.allreduce_sum(comm.rank());
      EXPECT_EQ(sum, 28);
    });
    EXPECT_EQ(work.size(), 8u);
  }
}

}  // namespace
}  // namespace neuro::par

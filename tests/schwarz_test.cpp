// Tests for the restricted additive Schwarz preconditioner: equivalence to
// block Jacobi at zero overlap, exactness on one rank, multi-rank solution
// agreement, and the iteration-count benefit of overlap.
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "base/rng.h"
#include "par/communicator.h"
#include "solver/additive_schwarz.h"
#include "solver/krylov.h"
#include "solver/preconditioner.h"

namespace neuro::solver {
namespace {

/// Banded diagonally dominant system (FEM-like coupling across partitions).
struct Banded {
  int n;
  std::vector<double> A, b;

  explicit Banded(int n_, std::uint64_t seed) : n(n_) {
    A.assign(static_cast<std::size_t>(n) * n, 0.0);
    b.resize(static_cast<std::size_t>(n));
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j <= std::min(n - 1, i + 4); ++j) {
        const double v = rng.uniform(-1, 1);
        A[static_cast<std::size_t>(i) * n + j] = v;
        A[static_cast<std::size_t>(j) * n + i] = v;
      }
    }
    for (int i = 0; i < n; ++i) {
      double off = 0;
      for (int j = 0; j < n; ++j) {
        if (j != i) off += std::abs(A[static_cast<std::size_t>(i) * n + j]);
      }
      A[static_cast<std::size_t>(i) * n + i] = off + 0.1;  // weakly dominant
      b[static_cast<std::size_t>(i)] = rng.uniform(-2, 2);
    }
  }

  [[nodiscard]] DistCsrMatrix matrix(RowRange range) const {
    std::vector<int> rp{0}, cols;
    std::vector<double> vals;
    for (int i = range.first.value(); i < range.second.value(); ++i) {
      for (int j = 0; j < n; ++j) {
        const double v = A[static_cast<std::size_t>(i) * n + j];
        if (v != 0.0) {
          cols.push_back(j);
          vals.push_back(v);
        }
      }
      rp.push_back(static_cast<int>(cols.size()));
    }
    return DistCsrMatrix(n, range, std::move(rp), std::move(cols), std::move(vals));
  }
};

RowRange rank_range(int n, int nranks, int rank) {
  const int base = n / nranks, extra = n % nranks;
  const int begin = rank * base + std::min(rank, extra);
  return {GlobalRow{begin}, GlobalRow{begin + base + (rank < extra ? 1 : 0)}};
}

TEST(SchwarzTest, SingleRankIsGlobalIlu0) {
  // One rank, any overlap: the extended block is the whole matrix, so the
  // apply must agree with BlockJacobiIlu0 (whose single block is also global).
  const Banded sys(30, 5);
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, 30);
    DistCsrMatrix A = sys.matrix(range);
    AdditiveSchwarz asm1(A, comm, 1);
    BlockJacobiIlu0 bj(A);
    EXPECT_EQ(asm1.extended_rows(), 30);
    DistVector r(30, range), z1(30, range), z2(30, range);
    for (const GlobalRow i : range) r[i] = std::sin(0.7 * i.value());
    asm1.apply(r, z1, comm);
    bj.apply(r, z2, comm);
    for (const GlobalRow i : range) EXPECT_NEAR(z1[i], z2[i], 1e-12);
  });
}

TEST(SchwarzTest, ZeroOverlapMatchesBlockJacobi) {
  const Banded sys(40, 7);
  par::run_spmd(4, [&](par::Communicator& comm) {
    const auto range = rank_range(40, 4, comm.rank());
    DistCsrMatrix A = sys.matrix(range);
    AdditiveSchwarz asm0(A, comm, 0);
    BlockJacobiIlu0 bj(A);
    EXPECT_EQ(asm0.extended_rows(), range.size());
    DistVector r(40, range), z1(40, range), z2(40, range);
    for (const GlobalRow g : range) r[g] = 0.3 * g.value() - 5.0;
    asm0.apply(r, z1, comm);
    bj.apply(r, z2, comm);
    for (const GlobalRow g : range) {
      EXPECT_NEAR(z1[g], z2[g], 1e-12);
    }
  });
}

TEST(SchwarzTest, OverlapGrowsExtendedBlock) {
  const Banded sys(40, 3);
  par::run_spmd(4, [&](par::Communicator& comm) {
    const auto range = rank_range(40, 4, comm.rank());
    DistCsrMatrix A = sys.matrix(range);
    const AdditiveSchwarz a0(A, comm, 0);
    const AdditiveSchwarz a1(A, comm, 1);
    const AdditiveSchwarz a2(A, comm, 2);
    EXPECT_GE(a1.extended_rows(), a0.extended_rows());
    EXPECT_GE(a2.extended_rows(), a1.extended_rows());
    if (comm.size() > 1 && comm.rank() == 1) {
      // An interior rank with a band-4 matrix gains rows on both sides.
      EXPECT_GT(a1.extended_rows(), a0.extended_rows());
    }
  });
}

TEST(SchwarzTest, GmresSolutionMatchesSerialReference) {
  const int n = 60;
  const Banded sys(n, 21);
  std::vector<double> reference(static_cast<std::size_t>(n));
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, n);
    DistCsrMatrix A = sys.matrix(range);
    A.setup_ghosts(comm);
    BlockJacobiIlu0 M(A);
    DistVector b(n, range), x(n, range);
    for (const GlobalRow i : range) b[i] = sys.b[i.index()];
    SolverConfig cfg;
    cfg.rtol = 1e-11;
    EXPECT_TRUE(gmres(A, b, x, M, cfg, comm).converged);
    for (const GlobalRow i : range) reference[i.index()] = x[i];
  });

  for (const int P : {2, 4}) {
    par::run_spmd(P, [&](par::Communicator& comm) {
      const auto range = rank_range(n, P, comm.rank());
      DistCsrMatrix A = sys.matrix(range);
      AdditiveSchwarz M(A, comm, 2);
      A.setup_ghosts(comm);
      DistVector b(n, range), x(n, range);
      for (const GlobalRow g : range) {
        b[g] = sys.b[g.index()];
      }
      SolverConfig cfg;
      cfg.rtol = 1e-11;
      EXPECT_TRUE(gmres(A, b, x, M, cfg, comm).converged) << "P=" << P;
      for (const GlobalRow g : range) {
        EXPECT_NEAR(x[g], reference[g.index()], 1e-6);
      }
    });
  }
}

TEST(SchwarzTest, OverlapReducesIterations) {
  // The motivating property: coupling across subdomain boundaries improves
  // the preconditioner, so iterations drop (or at worst stay equal) with
  // overlap on this strongly partition-coupled band matrix.
  const int n = 120;
  const Banded sys(n, 13);
  std::vector<int> iterations;
  for (const int overlap : {0, 2, 4}) {
    par::run_spmd(6, [&](par::Communicator& comm) {
      const auto range = rank_range(n, 6, comm.rank());
      DistCsrMatrix A = sys.matrix(range);
      AdditiveSchwarz M(A, comm, overlap);
      A.setup_ghosts(comm);
      DistVector b(n, range), x(n, range);
      for (const GlobalRow g : range) {
        b[g] = sys.b[g.index()];
      }
      SolverConfig cfg;
      cfg.rtol = 1e-9;
      const SolveStats stats = gmres(A, b, x, M, cfg, comm);
      EXPECT_TRUE(stats.converged);
      if (comm.rank() == 0) iterations.push_back(stats.iterations);
    });
  }
  ASSERT_EQ(iterations.size(), 3u);
  EXPECT_LE(iterations[1], iterations[0]);
  EXPECT_LE(iterations[2], iterations[1] + 1);
}

TEST(SchwarzTest, FactoryRoutesThroughCommOverload) {
  const Banded sys(20, 2);
  par::run_spmd(2, [&](par::Communicator& comm) {
    const auto range = rank_range(20, 2, comm.rank());
    DistCsrMatrix A = sys.matrix(range);
    const auto p = make_preconditioner(PreconditionerKind::kAdditiveSchwarzIlu0, A,
                                       comm, 1);
    EXPECT_EQ(p->name(), "additive-schwarz/ilu0");
  });
  DistCsrMatrix A = sys.matrix(row_range(GlobalRow{0}, 20));
  EXPECT_THROW(make_preconditioner(PreconditionerKind::kAdditiveSchwarzIlu0, A),
               CheckError);
}

}  // namespace
}  // namespace neuro::solver

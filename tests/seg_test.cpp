// Tests for the k-NN tissue classification stack and the intraoperative
// segmentation driver.
#include <gtest/gtest.h>

#include "base/check.h"
#include "par/communicator.h"
#include "phantom/brain_phantom.h"
#include "seg/intraop.h"
#include "seg/knn.h"

namespace neuro::seg {
namespace {

using phantom::Tissue;

TEST(FeatureStackTest, StoresChannelsWithWeights) {
  FeatureStack stack;
  stack.add_channel(ImageF({2, 2, 2}, 3.0f), 2.0);
  stack.add_channel(ImageF({2, 2, 2}, 5.0f), 1.0);
  EXPECT_EQ(stack.channels(), 2u);
  std::vector<double> f;
  stack.feature_at(0, 0, 0, f);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_DOUBLE_EQ(f[0], 6.0);  // weighted
  EXPECT_DOUBLE_EQ(f[1], 5.0);
}

TEST(FeatureStackTest, RejectsMismatchedDims) {
  FeatureStack stack;
  stack.add_channel(ImageF({2, 2, 2}));
  EXPECT_THROW(stack.add_channel(ImageF({3, 3, 3})), CheckError);
  EXPECT_THROW(stack.add_channel(ImageF({2, 2, 2}), 0.0), CheckError);
}

FeatureStack two_class_stack(ImageL& truth) {
  // Class 1 on the left half (intensity 10), class 2 on the right (intensity
  // 100) — trivially separable by the single intensity channel.
  truth = ImageL({8, 8, 8}, 1);
  ImageF intensity({8, 8, 8}, 10.0f);
  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 8; ++j) {
      for (int i = 4; i < 8; ++i) {
        truth(i, j, k) = 2;
        intensity(i, j, k) = 100.0f;
      }
    }
  }
  FeatureStack stack;
  stack.add_channel(std::move(intensity));
  return stack;
}

TEST(PrototypeTest, SelectsPerClassCounts) {
  ImageL truth;
  FeatureStack stack = two_class_stack(truth);
  Rng rng(1);
  const auto protos = select_prototypes(truth, stack, 10, rng);
  int c1 = 0, c2 = 0;
  for (const auto& p : protos) {
    c1 += p.label == 1;
    c2 += p.label == 2;
  }
  EXPECT_EQ(c1, 10);
  EXPECT_EQ(c2, 10);
}

TEST(PrototypeTest, DeterministicForSeed) {
  ImageL truth;
  FeatureStack stack = two_class_stack(truth);
  Rng rng1(5), rng2(5);
  const auto a = select_prototypes(truth, stack, 5, rng1);
  const auto b = select_prototypes(truth, stack, 5, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].voxel, b[i].voxel);
  }
}

TEST(PrototypeTest, ExcludeSkipsClasses) {
  ImageL truth;
  FeatureStack stack = two_class_stack(truth);
  Rng rng(1);
  const auto protos = select_prototypes(truth, stack, 5, rng, {2});
  for (const auto& p : protos) EXPECT_NE(p.label, 2);
  EXPECT_EQ(protos.size(), 5u);
}

TEST(PrototypeTest, CapsAtClassPopulation) {
  ImageL truth({3, 1, 1}, 1);
  truth.at(0, 0, 0) = 2;  // class 2 has one voxel
  FeatureStack stack;
  stack.add_channel(ImageF({3, 1, 1}, 1.0f));
  Rng rng(1);
  const auto protos = select_prototypes(truth, stack, 10, rng);
  int c2 = 0;
  for (const auto& p : protos) c2 += p.label == 2;
  EXPECT_EQ(c2, 1);
}

TEST(PrototypeTest, RefreshRereadsFeaturesAtRecordedLocations) {
  ImageL truth;
  FeatureStack stack = two_class_stack(truth);
  Rng rng(1);
  auto protos = select_prototypes(truth, stack, 3, rng);
  // New scan with shifted intensities; locations persist.
  FeatureStack stack2;
  stack2.add_channel(ImageF({8, 8, 8}, 42.0f));
  refresh_prototypes(protos, stack2);
  for (const auto& p : protos) {
    EXPECT_DOUBLE_EQ(p.features.at(0), 42.0);
  }
}

TEST(KnnTest, ClassifiesSeparableClasses) {
  ImageL truth;
  FeatureStack stack = two_class_stack(truth);
  Rng rng(2);
  KnnClassifier knn(select_prototypes(truth, stack, 20, rng), 3);
  EXPECT_EQ(knn.classify({15.0}), 1);
  EXPECT_EQ(knn.classify({90.0}), 2);
}

TEST(KnnTest, KOneIsNearestNeighbour) {
  std::vector<Prototype> protos(2);
  protos[0] = {{0, 0, 0}, 1, {0.0}};
  protos[1] = {{1, 0, 0}, 2, {10.0}};
  KnnClassifier knn(std::move(protos), 1);
  EXPECT_EQ(knn.classify({4.9}), 1);
  EXPECT_EQ(knn.classify({5.1}), 2);
}

TEST(KnnTest, MajorityBeatsSingleCloser) {
  // One very close prototype of class 1, two slightly farther of class 2:
  // with k=3 the majority (class 2) wins.
  std::vector<Prototype> protos(3);
  protos[0] = {{0, 0, 0}, 1, {0.0}};
  protos[1] = {{1, 0, 0}, 2, {2.0}};
  protos[2] = {{2, 0, 0}, 2, {3.0}};
  KnnClassifier knn(std::move(protos), 3);
  EXPECT_EQ(knn.classify({0.5}), 2);
}

TEST(KnnTest, VolumeClassificationMatchesTruth) {
  ImageL truth;
  FeatureStack stack = two_class_stack(truth);
  Rng rng(3);
  KnnClassifier knn(select_prototypes(truth, stack, 10, rng), 3);
  const ImageL result = knn.classify_volume(stack);
  EXPECT_DOUBLE_EQ(label_agreement(result, truth), 1.0);
}

TEST(KnnTest, ParallelMatchesSerial) {
  ImageL truth;
  FeatureStack stack = two_class_stack(truth);
  Rng rng(3);
  KnnClassifier knn(select_prototypes(truth, stack, 10, rng), 3);
  const ImageL serial = knn.classify_volume(stack);
  for (const int P : {2, 3, 5}) {
    ImageL parallel;
    par::run_spmd(P, [&](par::Communicator& comm) {
      const ImageL mine = knn.classify_volume_parallel(stack, comm);
      if (comm.rank() == 0) parallel = mine;
    });
    EXPECT_EQ(parallel.data(), serial.data()) << "P=" << P;
  }
}

TEST(KnnTest, DistanceWeightedOutvotesFarMajority) {
  // k=3: one very close class-1 prototype vs two distant class-2 prototypes.
  // Majority picks 2; distance weighting picks 1.
  std::vector<Prototype> protos(3);
  protos[0] = {{0, 0, 0}, 1, {0.0}};
  protos[1] = {{1, 0, 0}, 2, {10.0}};
  protos[2] = {{2, 0, 0}, 2, {12.0}};
  KnnClassifier majority(protos, 3, KnnClassifier::Voting::kMajority);
  KnnClassifier weighted(protos, 3, KnnClassifier::Voting::kDistanceWeighted);
  EXPECT_EQ(majority.classify({0.5}), 2);
  EXPECT_EQ(weighted.classify({0.5}), 1);
}

TEST(KnnTest, VotingModesAgreeWhenClear) {
  ImageL truth;
  FeatureStack stack = two_class_stack(truth);
  Rng rng(6);
  const auto protos = select_prototypes(truth, stack, 15, rng);
  KnnClassifier majority(protos, 5, KnnClassifier::Voting::kMajority);
  KnnClassifier weighted(protos, 5, KnnClassifier::Voting::kDistanceWeighted);
  const ImageL a = majority.classify_volume(stack);
  const ImageL b = weighted.classify_volume(stack);
  EXPECT_DOUBLE_EQ(label_agreement(a, b), 1.0);
}

TEST(MetricsTest, DiceOfIdenticalIsOne) {
  ImageL a({4, 4, 4}, 0);
  a.at(1, 1, 1) = 1;
  EXPECT_DOUBLE_EQ(dice_coefficient(a, a, 1), 1.0);
}

TEST(MetricsTest, DiceOfDisjointIsZero) {
  ImageL a({4, 4, 4}, 0), b({4, 4, 4}, 0);
  a.at(0, 0, 0) = 1;
  b.at(1, 0, 0) = 1;
  EXPECT_DOUBLE_EQ(dice_coefficient(a, b, 1), 0.0);
}

TEST(MetricsTest, DiceHalfOverlap) {
  ImageL a({4, 1, 1}, 0), b({4, 1, 1}, 0);
  a.at(0, 0, 0) = a.at(1, 0, 0) = 1;
  b.at(1, 0, 0) = b.at(2, 0, 0) = 1;
  EXPECT_DOUBLE_EQ(dice_coefficient(a, b, 1), 0.5);
}

TEST(MaskTest, SelectsRequestedLabels) {
  ImageL labels({3, 1, 1}, 0);
  labels.at(0, 0, 0) = 3;
  labels.at(1, 0, 0) = 4;
  labels.at(2, 0, 0) = 5;
  const ImageL mask = mask_of_labels(labels, {3, 5});
  EXPECT_EQ(mask.at(0, 0, 0), 1);
  EXPECT_EQ(mask.at(1, 0, 0), 0);
  EXPECT_EQ(mask.at(2, 0, 0), 1);
}

class IntraopSegTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    phantom::PhantomConfig cfg;
    cfg.dims = {40, 40, 40};
    cfg.spacing = {3.0, 3.0, 3.0};
    case_ = new phantom::PhantomCase(phantom::make_case(cfg, phantom::ShiftConfig{}));
  }
  static void TearDownTestSuite() {
    delete case_;
    case_ = nullptr;
  }
  static IntraopSegmentationConfig config() {
    IntraopSegmentationConfig c;
    c.classes = {phantom::label(Tissue::kBackground), phantom::label(Tissue::kSkin),
                 phantom::label(Tissue::kSkullGap), phantom::label(Tissue::kBrain),
                 phantom::label(Tissue::kVentricle)};
    c.exclude_classes = {phantom::label(Tissue::kFalx),
                         phantom::label(Tissue::kTumor)};
    c.dt_saturation_mm = 10.0;
    c.dt_weight = 1.5;
    return c;
  }
  static phantom::PhantomCase* case_;
};
phantom::PhantomCase* IntraopSegTest::case_ = nullptr;

TEST_F(IntraopSegTest, BrainMaskMatchesTruth) {
  const auto seg = segment_intraop(case_->intraop, case_->preop_labels, config());
  const std::vector<std::uint8_t> brainish = {3, 4, 5, 6};
  const ImageL mask = mask_of_labels(seg.labels, brainish);
  const ImageL truth = mask_of_labels(case_->intraop_labels, brainish);
  EXPECT_GT(dice_coefficient(mask, truth, 1), 0.85);
}

TEST_F(IntraopSegTest, PrototypeReuseReproducesModel) {
  const auto cfg = config();
  const auto first = segment_intraop(case_->intraop, case_->preop_labels, cfg);
  const auto second = segment_intraop(case_->intraop, case_->preop_labels, cfg,
                                      nullptr, &first.prototypes);
  // Same scan + same (refreshed) prototypes ⇒ same classification.
  EXPECT_EQ(second.labels.data(), first.labels.data());
}

TEST_F(IntraopSegTest, ParallelDriverMatchesSerial) {
  const auto cfg = config();
  const auto serial = segment_intraop(case_->intraop, case_->preop_labels, cfg);
  ImageL parallel;
  par::run_spmd(3, [&](par::Communicator& comm) {
    const auto seg = segment_intraop(case_->intraop, case_->preop_labels, cfg, &comm);
    if (comm.rank() == 0) parallel = seg.labels;
  });
  EXPECT_EQ(parallel.data(), serial.labels.data());
}

TEST_F(IntraopSegTest, ExcludedClassesNeverAppear) {
  const auto seg = segment_intraop(case_->intraop, case_->preop_labels, config());
  for (const auto l : seg.labels.data()) {
    EXPECT_NE(l, phantom::label(Tissue::kFalx));
    EXPECT_NE(l, phantom::label(Tissue::kTumor));
  }
}

}  // namespace
}  // namespace neuro::seg

// Overload and recovery tests for the multi-tenant session service
// (docs/service.md): typed admission rejection under saturation, cost-model
// deadline rejection, mid-flight deadline → degradation-ladder rung, seeded
// comm-fault retry determinism, checkpointed resume after eviction and after
// a crashed solve, and drain/shutdown with zero lost or deadlocked requests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "fem/degradation.h"
#include "obs/metrics.h"
#include "par/fault_inject.h"
#include "phantom/brain_phantom.h"
#include "service/bounded_queue.h"
#include "service/cost_model.h"
#include "service/session_server.h"

namespace neuro::service {
namespace {

TEST(BoundedQueueTest, PushPopOrderAndTypedOverflow) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  EXPECT_TRUE(queue.try_push(1).ok());
  EXPECT_TRUE(queue.try_push(2).ok());
  EXPECT_EQ(queue.try_push(3).code(), base::StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.max_depth(), 2u);

  auto first = queue.pop(0.0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 1);
  auto second = queue.pop(0.0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 2);

  const auto timed_out = queue.pop(0.01);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), base::StatusCode::kDeadlineExceeded);
}

TEST(BoundedQueueTest, CloseDrainsRemainingThenReportsUnavailable) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(7).ok());
  queue.close();
  EXPECT_EQ(queue.try_push(8).code(), base::StatusCode::kUnavailable);
  auto drained = queue.pop(0.0);
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained.value(), 7);
  const auto done = queue.pop(0.0);
  ASSERT_FALSE(done.ok());
  EXPECT_EQ(done.status().code(), base::StatusCode::kUnavailable);
}

TEST(CostModelTest, PriorThenMeasurementScaling) {
  CostModel model(CostModelOptions{.alpha = 0.5, .prior_seconds = 2.0});
  EXPECT_DOUBLE_EQ(model.predict_service_seconds(1.0), 2.0);
  EXPECT_DOUBLE_EQ(model.mean_service_seconds(), 2.0);

  model.record(1.0, {{"seg", 0.2}, {"fem", 0.3}});
  EXPECT_EQ(model.observations(), 1);
  EXPECT_DOUBLE_EQ(model.predict_service_seconds(1.0), 0.5);
  EXPECT_DOUBLE_EQ(model.predict_service_seconds(2.0), 1.0);
  EXPECT_DOUBLE_EQ(model.mean_service_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(model.predict_stage_seconds("fem", 2.0), 0.6);
  EXPECT_DOUBLE_EQ(model.predict_stage_seconds("unknown", 2.0), 0.0);

  model.record(1.0, {{"seg", 0.4}, {"fem", 0.5}});
  // EWMA with alpha 0.5: total/mvox moves from 0.5 halfway toward 0.9.
  EXPECT_NEAR(model.predict_service_seconds(1.0), 0.7, 1e-12);
}

TEST(RankPoolTest, GrantsAtMostFreeRanksNeverBlocksPartially) {
  RankPool pool(4);
  EXPECT_EQ(pool.capacity(), 4);
  const int first = pool.acquire(3);
  EXPECT_EQ(first, 3);
  const int second = pool.acquire(3);  // one free rank: partial grant
  EXPECT_EQ(second, 1);
  pool.release(second);
  pool.release(first);
  EXPECT_EQ(pool.free_ranks(), 4);
}

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    phantom::PhantomConfig pc;
    pc.dims = {32, 32, 32};
    pc.spacing = {3.5, 3.5, 3.5};
    cases_ = new std::vector<phantom::PhantomCase>(phantom::make_case_sequence(
        pc, phantom::ShiftConfig{}, {0.0, 0.5, 1.0}));
  }
  static void TearDownTestSuite() {
    delete cases_;
    cases_ = nullptr;
  }

  static core::PipelineConfig pipeline_config() {
    core::PipelineConfig config = core::default_pipeline_config();
    config.do_rigid_registration = false;
    return config;
  }

  static SessionId open_session(SessionServer& server) {
    return server.open_session((*cases_)[0].preop, (*cases_)[0].preop_labels,
                               pipeline_config());
  }

  static std::vector<phantom::PhantomCase>* cases_;
};
std::vector<phantom::PhantomCase>* ServiceTest::cases_ = nullptr;

TEST_F(ServiceTest, SaturationRejectsTypedAndShutdownLosesNothing) {
  ServerOptions options;
  options.workers = 0;  // nothing dispatches: pure admission/backpressure
  options.queue_capacity = 2;
  SessionServer server(options);
  const SessionId session = open_session(server);

  auto t1 = server.submit(session, (*cases_)[0].intraop);
  auto t2 = server.submit(session, (*cases_)[1].intraop);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto overflow = server.submit(session, (*cases_)[2].intraop);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), base::StatusCode::kResourceExhausted);
  auto unknown = server.submit(SessionId(99), (*cases_)[0].intraop);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), base::StatusCode::kFailedPrecondition);

  server.shutdown();  // queued requests terminate typed — none lost
  const RequestReport r1 = server.wait(t1.value());
  const RequestReport r2 = server.wait(t2.value());
  EXPECT_EQ(r1.status.code(), base::StatusCode::kUnavailable);
  EXPECT_EQ(r2.status.code(), base::StatusCode::kUnavailable);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.rejected_queue_full, 1);
  EXPECT_EQ(stats.rejected_unknown_session, 1);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.failed, 2);
  EXPECT_EQ(stats.usable, 0);
  EXPECT_LE(stats.max_queue_depth, 2);

  auto after = server.submit(session, (*cases_)[0].intraop);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), base::StatusCode::kUnavailable);
}

TEST_F(ServiceTest, AdmissionRejectsDoomedDeadlines) {
  ServerOptions options;
  options.workers = 0;
  options.cost.prior_seconds = 100.0;  // conservative empty-model stance
  SessionServer server(options);
  const SessionId session = open_session(server);

  auto doomed = server.submit(session, (*cases_)[0].intraop,
                              RequestOptions{.deadline_seconds = 0.5});
  ASSERT_FALSE(doomed.ok());
  EXPECT_EQ(doomed.status().code(), base::StatusCode::kDeadlineExceeded);

  // An unlimited deadline is admissible regardless of the prior.
  auto fine = server.submit(session, (*cases_)[0].intraop);
  ASSERT_TRUE(fine.ok());
  server.shutdown();
  EXPECT_EQ(server.wait(fine.value()).status.code(),
            base::StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().rejected_deadline, 1);
}

TEST_F(ServiceTest, SolvesAndResumesAfterEviction) {
  ServerOptions options;
  options.workers = 1;
  options.rank_pool = 2;
  options.ranks_per_solve = 2;
  SessionServer server(options);
  const SessionId session = open_session(server);

  auto t1 = server.submit(session, (*cases_)[0].intraop);
  ASSERT_TRUE(t1.ok());
  const RequestReport r1 = server.wait(t1.value());
  ASSERT_TRUE(r1.status.ok()) << r1.status;
  EXPECT_EQ(r1.scan_index, 0);
  EXPECT_FALSE(r1.degraded);
  EXPECT_FALSE(r1.resumed);
  EXPECT_EQ(r1.ranks, 2);
  EXPECT_GT(r1.time_to_field_seconds, 0.0);
  EXPECT_GE(r1.service_seconds, 0.0);

  EXPECT_EQ(server.session_checkpoint(session).scans_processed, 1);
  server.evict_session(session);

  auto t2 = server.submit(session, (*cases_)[1].intraop);
  ASSERT_TRUE(t2.ok());
  const RequestReport r2 = server.wait(t2.value());
  ASSERT_TRUE(r2.status.ok()) << r2.status;
  EXPECT_TRUE(r2.resumed);
  EXPECT_EQ(r2.scan_index, 1);  // numbering continues across the eviction

  EXPECT_EQ(server.cost_model().observations(), 2);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.usable, 2);
  EXPECT_EQ(stats.resumes, 1);
}

TEST_F(ServiceTest, MidFlightDeadlineSteersDownTheLadder) {
  ServerOptions options;
  options.workers = 1;
  SessionServer server(options);
  // A denser mesh than the other tests: the full solve must not be able to
  // finish inside the epsilon budget left after the earlier stages, or there
  // is nothing to degrade from.
  core::PipelineConfig config = pipeline_config();
  config.mesher.stride = 2;
  const SessionId session = server.open_session(
      (*cases_)[0].preop, (*cases_)[0].preop_labels, config);

  // The empty cost model admits optimistically (prior 0); the solve then
  // slips its 50 ms budget mid-flight and must degrade, not cancel.
  auto slipped = server.submit(session, (*cases_)[2].intraop,
                               RequestOptions{.deadline_seconds = 0.05});
  ASSERT_TRUE(slipped.ok());
  const RequestReport report = server.wait(slipped.value());
  ASSERT_TRUE(report.status.ok()) << report.status;
  EXPECT_TRUE(report.degraded);
  EXPECT_NE(report.rung, std::string(fem::degradation_rung_name(
                             fem::DegradationRung::kFullSolve)));
  EXPECT_EQ(server.stats().degraded, 1);
}

RequestReport run_seeded_fault_campaign(
    const std::vector<phantom::PhantomCase>& cases) {
  ServerOptions options;
  options.workers = 1;
  options.rank_pool = 2;
  options.ranks_per_solve = 2;
  options.retry.max_retries = 1;
  options.retry.backoff_seconds = 0.001;
  SessionServer server(options);

  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = false;
  config.fem.fault_injection.kind = par::FaultKind::kDrop;
  config.fem.fault_injection.probability = 1.0;
  config.fem.fault_injection.seed = 7;
  config.fem.fault_injection.recv_timeout_ms = 25.0;
  config.degradation.allow_baseline = false;  // force ladder exhaustion
  const SessionId session = server.open_session(
      cases[0].preop, cases[0].preop_labels, config);

  auto ticket = server.submit(session, cases[0].intraop);
  EXPECT_TRUE(ticket.ok());
  return server.wait(ticket.value());
}

TEST_F(ServiceTest, SeededCommFaultRetryIsDeterministic) {
  const RequestReport first = run_seeded_fault_campaign(*cases_);
  EXPECT_FALSE(first.status.ok());
  EXPECT_EQ(first.retries, 1);  // one bounded retry, then a typed failure
  EXPECT_EQ(first.rung, "-");

  const RequestReport second = run_seeded_fault_campaign(*cases_);
  EXPECT_EQ(second.status.code(), first.status.code());
  EXPECT_EQ(second.retries, first.retries);
  EXPECT_EQ(second.rung, first.rung);
}

TEST_F(ServiceTest, CrashedSessionResumesFromCheckpoint) {
  ServerOptions options;
  options.workers = 1;
  SessionServer server(options);
  const SessionId session = open_session(server);

  auto good = server.submit(session, (*cases_)[0].intraop);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(server.wait(good.value()).status.ok());

  // A poison request: a wrong-shaped intraop volume aborts the pipeline's
  // invariant checks mid-solve. The server quarantines the session and fails
  // the request typed instead of dying.
  auto poison = server.submit(session, ImageF({8, 8, 8}));
  ASSERT_TRUE(poison.ok());
  const RequestReport crash = server.wait(poison.value());
  EXPECT_FALSE(crash.status.ok());
  EXPECT_TRUE(crash.crashed);
  EXPECT_EQ(crash.status.code(), base::StatusCode::kUnavailable);

  auto after = server.submit(session, (*cases_)[1].intraop);
  ASSERT_TRUE(after.ok());
  const RequestReport recovered = server.wait(after.value());
  ASSERT_TRUE(recovered.status.ok()) << recovered.status;
  EXPECT_TRUE(recovered.resumed);
  EXPECT_EQ(recovered.scan_index, 1);  // the poison scan never counted

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.crashes, 1);
  EXPECT_EQ(stats.resumes, 1);
  EXPECT_EQ(stats.usable, 2);
  EXPECT_EQ(stats.failed, 1);
}

TEST_F(ServiceTest, DrainCompletesInFlightAndRejectsNew) {
  ServerOptions options;
  options.workers = 1;
  SessionServer server(options);
  const SessionId session = open_session(server);

  auto t1 = server.submit(session, (*cases_)[0].intraop);
  auto t2 = server.submit(session, (*cases_)[1].intraop);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());

  server.drain();
  auto rejected = server.submit(session, (*cases_)[2].intraop);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), base::StatusCode::kUnavailable);

  EXPECT_TRUE(server.wait(t1.value()).status.ok());
  EXPECT_TRUE(server.wait(t2.value()).status.ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.usable, 2);
  EXPECT_EQ(stats.rejected_draining, 1);
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST_F(ServiceTest, ServiceInstrumentsAreRegistered) {
  // Self-contained (ctest dispatches every test into its own process, so no
  // other test has populated the registry): drive one admission, one typed
  // overflow rejection and one abandoned completion, then check the
  // process-wide instruments counted them. Deltas, not absolutes, so the test
  // also passes inside a full single-process binary run.
  auto& m = obs::metrics();
  auto& histogram = m.histogram("service.time_to_field_seconds",
                                {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0});
  const std::int64_t submitted = m.counter("service.submitted").value();
  const std::int64_t admitted = m.counter("service.admitted").value();
  const std::int64_t rejected =
      m.counter("service.rejected.resource_exhausted").value();
  const std::int64_t failed = m.counter("service.failed").value();
  const std::int64_t observed = histogram.total_count();

  ServerOptions options;
  options.workers = 0;  // admission only; shutdown abandons the queued request
  options.queue_capacity = 1;
  SessionServer server(options);
  const SessionId session = open_session(server);
  const auto first = server.submit(session, (*cases_)[0].intraop);
  ASSERT_TRUE(first.ok());
  const auto second = server.submit(session, (*cases_)[1].intraop);
  EXPECT_EQ(second.status().code(), base::StatusCode::kResourceExhausted);
  server.shutdown();
  EXPECT_EQ(server.wait(first.value()).status.code(),
            base::StatusCode::kUnavailable);

  EXPECT_EQ(m.counter("service.submitted").value(), submitted + 2);
  EXPECT_EQ(m.counter("service.admitted").value(), admitted + 1);
  EXPECT_EQ(m.counter("service.rejected.resource_exhausted").value(),
            rejected + 1);
  EXPECT_EQ(m.counter("service.failed").value(), failed + 1);
  EXPECT_EQ(histogram.total_count(), observed + 1);
}

TEST(RollingWindowTest, QuantilesAttainmentAndHistory) {
  RollingWindow window(4);
  EXPECT_EQ(window.quantile(0.5), 0.0);        // empty: well-defined zeros
  EXPECT_EQ(window.fraction_within(1.0), 1.0);  // vacuously attained

  window.add(1.0);
  window.add(2.0);
  window.add(3.0);
  window.add(4.0);
  EXPECT_EQ(window.quantile(0.50), 2.0);  // nearest-rank: ceil(0.5*4) = 2nd
  EXPECT_EQ(window.quantile(0.99), 4.0);
  EXPECT_EQ(window.fraction_within(2.0), 0.5);

  window.add(10.0);  // evicts the oldest (1.0); window is now {2,3,4,10}
  EXPECT_EQ(window.count(), 4u);
  EXPECT_EQ(window.total(), 5u);
  EXPECT_EQ(window.quantile(0.99), 10.0);
  const std::vector<double> history = window.history();
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(history.front(), 2.0);  // oldest first
  EXPECT_EQ(history.back(), 10.0);
}

TEST_F(ServiceTest, SnapshotPublishesSloTelemetry) {
  ServerOptions options;
  options.workers = 1;
  options.telemetry.window = 8;
  options.telemetry.slo_target_seconds = 300.0;  // generous: both attain
  SessionServer server(options);
  const SessionId session = open_session(server);

  auto t1 = server.submit(session, (*cases_)[0].intraop);
  auto t2 = server.submit(session, (*cases_)[1].intraop);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(server.wait(t1.value()).status.ok());
  ASSERT_TRUE(server.wait(t2.value()).status.ok());

  std::ostringstream os;
  server.publish_snapshot(os);
  const std::string snapshot = os.str();
  EXPECT_NE(snapshot.find("\"schema\":\"neuro.snapshot.v1\""),
            std::string::npos);
  EXPECT_NE(snapshot.find("\"sequence\":1"), std::string::npos);
  EXPECT_NE(snapshot.find("\"target_seconds\":300"), std::string::npos);
  EXPECT_NE(snapshot.find("\"session\":" +
                          std::to_string(session.value())),
            std::string::npos);
  EXPECT_NE(snapshot.find("\"attainment\":1"), std::string::npos);
  EXPECT_NE(snapshot.find("\"metrics\":["), std::string::npos);

  // Publishing refreshed the SLO gauges from the rolling window.
  auto& m = obs::metrics();
  const double p50 =
      m.gauge("service.slo.p50_time_to_field_seconds").value();
  const double p99 =
      m.gauge("service.slo.p99_time_to_field_seconds").value();
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
  EXPECT_EQ(m.gauge("service.slo.attainment_ratio").value(), 1.0);
  EXPECT_EQ(m.gauge("service.slo.target_seconds").value(), 300.0);

  // A second publish advances the sequence number.
  std::ostringstream os2;
  server.publish_snapshot(os2);
  EXPECT_NE(os2.str().find("\"sequence\":2"), std::string::npos);
}

TEST_F(ServiceTest, PublisherThreadWritesSnapshotFile) {
  const std::string path = ::testing::TempDir() + "neuro_snapshot.json";
  std::remove(path.c_str());
  {
    ServerOptions options;
    options.workers = 1;
    options.telemetry.publish_interval_seconds = 0.002;
    options.telemetry.snapshot_path = path;
    SessionServer server(options);
    const SessionId session = open_session(server);
    auto ticket = server.submit(session, (*cases_)[0].intraop);
    ASSERT_TRUE(ticket.ok());
    ASSERT_TRUE(server.wait(ticket.value()).status.ok());
    server.shutdown();  // joins the publisher, writes the terminal snapshot
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"schema\":\"neuro.snapshot.v1\""),
            std::string::npos);
  EXPECT_NE(buf.str().find("\"usable\":1"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ServiceTest, AdmissionRejectionStormTriggersRecorder) {
  auto& storm_counter =
      obs::metrics().counter("obs.recorder.triggers.admission_storm");
  const std::int64_t before = storm_counter.value();

  ServerOptions options;
  options.workers = 0;
  options.queue_capacity = 1;
  options.telemetry.admission_storm_threshold = 3;
  SessionServer server(options);
  const SessionId session = open_session(server);
  ASSERT_TRUE(server.submit(session, (*cases_)[0].intraop).ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(server.submit(session, (*cases_)[1].intraop).ok());
  }
  // Exactly one trigger: the storm fires when the consecutive-rejection
  // count crosses the threshold, not on every rejection after it.
  EXPECT_EQ(storm_counter.value(), before + 1);
  server.shutdown();
}

TEST_F(ServiceTest, RetryPathRecordsBackoffTelemetry) {
  auto& m = obs::metrics();
  auto& backoff = m.histogram("service.backoff_seconds",
                              {0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0});
  const std::int64_t observed = backoff.total_count();
  const std::int64_t comm_triggers =
      m.counter("obs.recorder.triggers.comm_fault").value();

  const RequestReport report = run_seeded_fault_campaign(*cases_);
  EXPECT_FALSE(report.status.ok());
  EXPECT_EQ(report.retries, 1);
  // One retry -> one backoff observation, and the terminal comm failure
  // noted a comm_fault trigger (the recorder is unarmed here, so it counts
  // without writing a bundle).
  EXPECT_EQ(backoff.total_count(), observed + 1);
  EXPECT_GE(m.counter("obs.recorder.triggers.comm_fault").value(),
            comm_triggers + 1);
}

}  // namespace
}  // namespace neuro::service

// Integration tests for the multi-scan SurgerySession: prototype-model reuse
// across scans, per-scan accuracy over a progressing deformation, and the
// aggregate timeline.
#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "core/surgery_session.h"
#include "phantom/brain_phantom.h"

namespace neuro::core {
namespace {

TEST(ShiftProgressTest, ScalesAmplitudes) {
  phantom::ShiftConfig final_shift;
  final_shift.max_sink_mm = 8.0;
  final_shift.resection_collapse_mm = 3.0;

  const auto at0 = phantom::shift_at_progress(final_shift, 0.0);
  EXPECT_DOUBLE_EQ(at0.max_sink_mm, 0.0);
  EXPECT_FALSE(at0.resect_tumor);

  const auto at_quarter = phantom::shift_at_progress(final_shift, 0.25);
  EXPECT_DOUBLE_EQ(at_quarter.max_sink_mm, 2.0);
  EXPECT_FALSE(at_quarter.resect_tumor);  // before resection onset

  const auto at_full = phantom::shift_at_progress(final_shift, 1.0);
  EXPECT_DOUBLE_EQ(at_full.max_sink_mm, 8.0);
  EXPECT_TRUE(at_full.resect_tumor);
  EXPECT_DOUBLE_EQ(at_full.resection_collapse_mm, 3.0);

  EXPECT_THROW(phantom::shift_at_progress(final_shift, 1.5), CheckError);
}

TEST(CaseSequenceTest, SharedPreopIndependentIntraop) {
  phantom::PhantomConfig pc;
  pc.dims = {32, 32, 32};
  pc.spacing = {3.5, 3.5, 3.5};
  const auto cases =
      phantom::make_case_sequence(pc, phantom::ShiftConfig{}, {0.0, 0.5, 1.0});
  ASSERT_EQ(cases.size(), 3u);
  // Shared preoperative acquisition.
  EXPECT_EQ(cases[1].preop.data(), cases[0].preop.data());
  EXPECT_EQ(cases[2].preop_labels.data(), cases[0].preop_labels.data());
  // Independent intraop noise.
  EXPECT_NE(cases[1].intraop.data(), cases[0].intraop.data());
  // Deformation grows with progress.
  const ImageL mask = seg::mask_of_labels(cases[2].intraop_labels, {3, 4, 5, 6});
  const double d0 = field_stats(cases[0].true_backward_shift, &mask).mean_mm;
  const double d2 = field_stats(cases[2].true_backward_shift, &mask).mean_mm;
  EXPECT_LT(d0, 0.3);  // first scan: before any change
  EXPECT_GT(d2, 1.0);
}

TEST(CaseSequenceTest, RigidOffsetsPerScan) {
  phantom::PhantomConfig pc;
  pc.dims = {24, 24, 24};
  pc.spacing = {4.0, 4.0, 4.0};
  RigidTransform move;
  move.translation = {3, 0, 0};
  const auto cases = phantom::make_case_sequence(pc, phantom::ShiftConfig{},
                                                 {0.0, 1.0}, {RigidTransform{}, move});
  EXPECT_NEAR(cases[0].true_backward_shift(1, 1, 1).x, 0.0, 1e-9);
  EXPECT_NEAR(cases[1].true_backward_shift(1, 1, 1).x, -3.0, 1e-9);
  EXPECT_THROW(
      phantom::make_case_sequence(pc, phantom::ShiftConfig{}, {0.0, 1.0}, {move}),
      CheckError);
}

class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    phantom::PhantomConfig pc;
    pc.dims = {48, 48, 48};
    pc.spacing = {2.8, 2.8, 2.8};
    cases_ = new std::vector<phantom::PhantomCase>(phantom::make_case_sequence(
        pc, phantom::ShiftConfig{}, {0.35, 0.7, 1.0}));

    PipelineConfig config = default_pipeline_config();
    config.do_rigid_registration = false;
    session_ = new SurgerySession((*cases_)[0].preop, (*cases_)[0].preop_labels,
                                  config);
    for (const auto& cas : *cases_) session_->process_scan(cas.intraop);
  }
  static void TearDownTestSuite() {
    delete session_;
    delete cases_;
    session_ = nullptr;
    cases_ = nullptr;
  }

  static std::vector<phantom::PhantomCase>* cases_;
  static SurgerySession* session_;
};
std::vector<phantom::PhantomCase>* SessionTest::cases_ = nullptr;
SurgerySession* SessionTest::session_ = nullptr;

TEST_F(SessionTest, ProcessesAllScans) {
  EXPECT_EQ(session_->scans_processed(), 3);
  for (int s = 0; s < 3; ++s) {
    EXPECT_TRUE(session_->result(s).fem.stats.converged) << "scan " << s;
  }
  EXPECT_THROW(static_cast<void>(session_->result(3)), CheckError);
}

TEST_F(SessionTest, PrototypeModelPersistsAcrossScans) {
  // The model selected on scan 1 is reused: same voxel locations afterwards.
  const auto& p1 = session_->result(0).segmentation.prototypes;
  const auto& p3 = session_->result(2).segmentation.prototypes;
  ASSERT_EQ(p1.size(), p3.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].voxel, p3[i].voxel);
    EXPECT_EQ(p1[i].label, p3[i].label);
  }
  EXPECT_EQ(session_->prototypes().size(), p1.size());
}

TEST_F(SessionTest, EachScanBeatsRigidOnly) {
  for (int s = 1; s < 3; ++s) {  // scan 0 has almost no deformation to recover
    const auto report =
        evaluate_against_truth(session_->result(s), (*cases_)[static_cast<std::size_t>(s)]);
    EXPECT_LT(report.recovered_error.mean_mm, report.residual_rigid_only.mean_mm)
        << "scan " << s;
  }
}

TEST_F(SessionTest, RecoveredDeformationGrowsWithSurgery) {
  // Later scans carry more brain shift; the recovered fields must order the
  // same way.
  const double d1 = field_stats(session_->result(0).forward_field).mean_mm;
  const double d3 = field_stats(session_->result(2).forward_field).mean_mm;
  EXPECT_LT(d1, d3);
}

TEST_F(SessionTest, CumulativeTimelineSumsStages) {
  const auto total = session_->cumulative_timeline();
  ASSERT_FALSE(total.empty());
  double expected = 0.0;
  for (int s = 0; s < 3; ++s) {
    expected += session_->result(s).stage_seconds("tissue_classification");
  }
  const auto it = std::find_if(total.begin(), total.end(), [](const StageTiming& t) {
    return t.name == "tissue_classification";
  });
  ASSERT_NE(it, total.end());
  EXPECT_NEAR(it->seconds, expected, 1e-9);
}

class RetentionCaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    phantom::PhantomConfig pc;
    pc.dims = {32, 32, 32};
    pc.spacing = {3.5, 3.5, 3.5};
    cases_ = new std::vector<phantom::PhantomCase>(phantom::make_case_sequence(
        pc, phantom::ShiftConfig{}, {0.0, 0.25, 0.5, 0.75, 1.0}));
  }
  static void TearDownTestSuite() {
    delete cases_;
    cases_ = nullptr;
  }
  static PipelineConfig config() {
    PipelineConfig config = default_pipeline_config();
    config.do_rigid_registration = false;
    return config;
  }

  static std::vector<phantom::PhantomCase>* cases_;
};
std::vector<phantom::PhantomCase>* RetentionCaseTest::cases_ = nullptr;

TEST_F(RetentionCaseTest, RetiresOldFullResultsKeepsEverySummary) {
  SurgerySession session((*cases_)[0].preop, (*cases_)[0].preop_labels,
                         config(), SessionRetention{.keep_full_results = 2});
  for (const auto& cas : *cases_) session.process_scan(cas.intraop);

  EXPECT_EQ(session.scans_processed(), 5);
  EXPECT_EQ(session.summaries_recorded(), 5);
  // Only the last two full (image-heavy) results survive.
  EXPECT_FALSE(session.has_full_result(0));
  EXPECT_FALSE(session.has_full_result(2));
  EXPECT_TRUE(session.has_full_result(3));
  EXPECT_TRUE(session.has_full_result(4));
  EXPECT_THROW(static_cast<void>(session.result(0)), CheckError);
  EXPECT_EQ(&session.result(4), &session.latest());
  // Every scan keeps its lightweight summary after the full result retires.
  for (int s = 0; s < 5; ++s) {
    EXPECT_FALSE(session.summary(s).timeline.empty()) << "scan " << s;
    EXPECT_GT(session.summary(s).total_seconds, 0.0) << "scan " << s;
  }
  // The cumulative timeline still covers all five scans, not just the
  // retained tail.
  const auto total = session.cumulative_timeline();
  double expected = 0.0;
  for (int s = 0; s < 5; ++s) {
    for (const auto& stage : session.summary(s).timeline) {
      if (stage.name == "tissue_classification") expected += stage.seconds;
    }
  }
  const auto it =
      std::find_if(total.begin(), total.end(), [](const StageTiming& t) {
        return t.name == "tissue_classification";
      });
  ASSERT_NE(it, total.end());
  EXPECT_NEAR(it->seconds, expected, 1e-9);
}

TEST_F(RetentionCaseTest, ResumesACaseFromItsCheckpoint) {
  SurgerySession original((*cases_)[0].preop, (*cases_)[0].preop_labels,
                          config());
  original.process_scan((*cases_)[0].intraop);
  original.process_scan((*cases_)[2].intraop);
  const SessionCheckpoint checkpoint = original.checkpoint();
  EXPECT_EQ(checkpoint.scans_processed, 2);
  ASSERT_FALSE(checkpoint.prototypes.empty());
  ASSERT_FALSE(checkpoint.last_good_field.empty());

  SurgerySession resumed((*cases_)[0].preop, (*cases_)[0].preop_labels,
                         config(), checkpoint);
  EXPECT_EQ(resumed.scans_processed(), 2);
  // Pre-restore scans kept their count but not their images or summaries.
  EXPECT_FALSE(resumed.has_full_result(1));
  EXPECT_THROW(static_cast<void>(resumed.result(1)), CheckError);
  EXPECT_THROW(static_cast<void>(resumed.summary(1)), CheckError);

  const auto& result = resumed.process_scan((*cases_)[4].intraop);
  EXPECT_EQ(resumed.scans_processed(), 3);
  EXPECT_TRUE(resumed.has_full_result(2));
  EXPECT_EQ(resumed.summaries_recorded(), 1);
  // The restored model is the one the original selected: same locations.
  const auto& prototypes = result.segmentation.prototypes;
  ASSERT_EQ(prototypes.size(), checkpoint.prototypes.size());
  for (std::size_t i = 0; i < prototypes.size(); ++i) {
    EXPECT_EQ(prototypes[i].voxel, checkpoint.prototypes[i].voxel);
    EXPECT_EQ(prototypes[i].label, checkpoint.prototypes[i].label);
  }
}

TEST(SessionConstructionTest, RejectsBadInputs) {
  EXPECT_THROW(SurgerySession(ImageF({4, 4, 4}), ImageL({5, 5, 5}),
                              default_pipeline_config()),
               CheckError);
  EXPECT_THROW(SurgerySession(ImageF({4, 4, 4}), ImageL({4, 4, 4}),
                              PipelineConfig{}),
               CheckError);
  SurgerySession fresh(ImageF({4, 4, 4}), ImageL({4, 4, 4}),
                       default_pipeline_config());
  EXPECT_THROW(static_cast<void>(fresh.latest()), CheckError);
}

}  // namespace
}  // namespace neuro::core

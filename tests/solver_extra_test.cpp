// Additional solver-layer tests: IC(0) preconditioning (SPD-safe block
// preconditioner), matrix compaction after boundary-condition substitution,
// and their interaction with the Krylov methods.
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "base/rng.h"
#include "par/communicator.h"
#include "solver/dist_matrix.h"
#include "solver/krylov.h"
#include "solver/preconditioner.h"

namespace neuro::solver {
namespace {

/// Banded SPD system (same generator family as solver_test).
struct Spd {
  int n;
  std::vector<double> A, b;

  explicit Spd(int n_, std::uint64_t seed) : n(n_) {
    A.assign(static_cast<std::size_t>(n) * n, 0.0);
    b.resize(static_cast<std::size_t>(n));
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j <= std::min(n - 1, i + 3); ++j) {
        const double v = rng.uniform(-1, 1);
        A[static_cast<std::size_t>(i) * n + j] = v;
        A[static_cast<std::size_t>(j) * n + i] = v;
      }
    }
    for (int i = 0; i < n; ++i) {
      double off = 0;
      for (int j = 0; j < n; ++j) {
        if (j != i) off += std::abs(A[static_cast<std::size_t>(i) * n + j]);
      }
      A[static_cast<std::size_t>(i) * n + i] = off + rng.uniform(0.5, 1.5);
      b[static_cast<std::size_t>(i)] = rng.uniform(-2, 2);
    }
  }

  [[nodiscard]] DistCsrMatrix matrix(RowRange range) const {
    std::vector<int> rp{0}, cols;
    std::vector<double> vals;
    for (int i = range.first.value(); i < range.second.value(); ++i) {
      for (int j = 0; j < n; ++j) {
        const double v = A[static_cast<std::size_t>(i) * n + j];
        if (v != 0.0) {
          cols.push_back(j);
          vals.push_back(v);
        }
      }
      rp.push_back(static_cast<int>(cols.size()));
    }
    return DistCsrMatrix(n, range, std::move(rp), std::move(cols), std::move(vals));
  }
};

TEST(Ic0Test, ExactForTridiagonalSpd) {
  // Tridiagonal SPD: the Cholesky factor has the same pattern, so IC(0) is
  // exact and one application solves the system.
  const int n = 15;
  std::vector<int> rp{0}, cols;
  std::vector<double> vals;
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(0, i - 1); j <= std::min(n - 1, i + 1); ++j) {
      cols.push_back(j);
      vals.push_back(j == i ? 4.0 : -1.0);
    }
    rp.push_back(static_cast<int>(cols.size()));
  }
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, n);
    DistCsrMatrix A(n, range, rp, cols, vals);
    BlockJacobiIc0 M(A);
    EXPECT_DOUBLE_EQ(M.shift(), 0.0);
    DistVector r(n, range, 1.0), z(n, range), back(n, range);
    M.apply(r, z, comm);
    A.apply(z, back, comm);
    for (const GlobalRow i : range) EXPECT_NEAR(back[i], 1.0, 1e-12);
  });
}

TEST(Ic0Test, CgConvergesFastWithIc0) {
  // The whole point of IC(0): a symmetric factorization CG can trust.
  const Spd sys(80, 3);
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, 80);
    DistCsrMatrix A = sys.matrix(range);
    A.setup_ghosts(comm);
    DistVector b(80, range), x_ic(80, range), x_none(80, range);
    for (const GlobalRow i : range) b[i] = sys.b[i.index()];
    SolverConfig cfg;
    cfg.rtol = 1e-9;
    BlockJacobiIc0 ic(A);
    IdentityPreconditioner none;
    const SolveStats with_ic = cg(A, b, x_ic, ic, cfg, comm);
    const SolveStats without = cg(A, b, x_none, none, cfg, comm);
    EXPECT_TRUE(with_ic.converged);
    EXPECT_TRUE(without.converged);
    EXPECT_LT(with_ic.iterations, without.iterations);
    EXPECT_LT(true_residual_norm(A, b, x_ic, comm), 1e-6);
  });
}

TEST(Ic0Test, MultiRankMatchesSingleRank) {
  const Spd sys(60, 9);
  std::vector<double> reference(60);
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, 60);
    DistCsrMatrix A = sys.matrix(range);
    A.setup_ghosts(comm);
    BlockJacobiIc0 M(A);
    DistVector b(60, range), x(60, range);
    for (const GlobalRow i : range) b[i] = sys.b[i.index()];
    SolverConfig cfg;
    cfg.rtol = 1e-11;
    EXPECT_TRUE(cg(A, b, x, M, cfg, comm).converged);
    for (const GlobalRow i : range) reference[i.index()] = x[i];
  });
  for (const int P : {2, 4}) {
    par::run_spmd(P, [&](par::Communicator& comm) {
      const int base = 60 / P, extra = 60 % P;
      const int begin = comm.rank() * base + std::min(comm.rank(), extra);
      const RowRange range = row_range(
          GlobalRow{begin}, base + (comm.rank() < extra ? 1 : 0));
      DistCsrMatrix A = sys.matrix(range);
      A.setup_ghosts(comm);
      BlockJacobiIc0 M(A);
      DistVector b(60, range), x(60, range);
      for (const GlobalRow g : range) {
        b[g] = sys.b[g.index()];
      }
      SolverConfig cfg;
      cfg.rtol = 1e-11;
      EXPECT_TRUE(cg(A, b, x, M, cfg, comm).converged) << "P=" << P;
      for (const GlobalRow g : range) {
        EXPECT_NEAR(x[g], reference[g.index()], 1e-6);
      }
    });
  }
}

TEST(Ic0Test, ShiftHandlesNonMMatrix) {
  // A small SPD matrix engineered to break plain IC(0): strong positive
  // off-diagonals (non-M-matrix). The constructor must survive via shifting
  // and still deliver a usable preconditioner.
  const int n = 3;
  // A = [4 3 0; 3 4 3; 0 3 4] — SPD (eigs ~ 4±3√2/... check: det>0) but
  // IC(0) of such patterns can lose definiteness in larger analogues; here we
  // simply verify the shift path produces a working preconditioner.
  std::vector<int> rp{0, 2, 5, 7};
  std::vector<int> cols{0, 1, 0, 1, 2, 1, 2};
  std::vector<double> vals{4, 3, 3, 4, 3, 3, 4};
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, n);
    DistCsrMatrix A(n, range, rp, cols, vals);
    A.setup_ghosts(comm);
    BlockJacobiIc0 M(A);
    DistVector b(n, range, 1.0), x(n, range);
    SolverConfig cfg;
    cfg.rtol = 1e-12;
    // Not necessarily SPD (eig 4-3√2 <0?): 4 - 3*sqrt(2) ≈ -0.24 — indefinite!
    // CG would reject it; use GMRES, which only needs a nonsingular operator.
    const SolveStats stats = gmres(A, b, x, M, cfg, comm);
    EXPECT_TRUE(stats.converged);
    EXPECT_LT(true_residual_norm(A, b, x, comm), 1e-8);
  });
}

TEST(DropZerosTest, RemovesExplicitZerosKeepsDiagonal) {
  std::vector<int> rp{0, 3, 6};
  std::vector<int> cols{0, 1, 2, 0, 1, 2};
  std::vector<double> vals{1.0, 0.0, 2.0, 0.0, 0.0, 3.0};
  DistCsrMatrix A(3, row_range(GlobalRow{0}, 2), rp, cols, vals);
  A.drop_zeros();
  EXPECT_EQ(A.local_nnz(), 4u);  // (0,0), (0,2), (1,1) kept as diagonal, (1,2)
  EXPECT_DOUBLE_EQ(A.value_at(GlobalRow{0}, GlobalRow{0}), 1.0);
  EXPECT_DOUBLE_EQ(A.value_at(GlobalRow{0}, GlobalRow{2}), 2.0);
  // Diagonal survives even at zero:
  EXPECT_DOUBLE_EQ(A.value_at(GlobalRow{1}, GlobalRow{1}), 0.0);
  EXPECT_DOUBLE_EQ(A.value_at(GlobalRow{1}, GlobalRow{2}), 3.0);
  EXPECT_EQ(A.find_entry(GlobalRow{0}, GlobalRow{1}), nullptr);
}

TEST(DropZerosTest, SpmvUnchangedByCompaction) {
  const Spd sys(40, 11);
  par::run_spmd(2, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{20 * comm.rank()}, 20);
    DistCsrMatrix dense_pattern = sys.matrix(range);
    DistCsrMatrix compacted = sys.matrix(range);
    // Zero a few entries in both value arrays, then compact only one.
    for (double* v : {compacted.find_entry(range.first, range.first + 1),
                      dense_pattern.find_entry(range.first, range.first + 1)}) {
      if (v != nullptr) *v = 0.0;
    }
    compacted.drop_zeros();
    dense_pattern.setup_ghosts(comm);
    compacted.setup_ghosts(comm);

    DistVector x(40, range), y1(40, range), y2(40, range);
    for (const GlobalRow g : range) x[g] = 0.1 * g.value();
    dense_pattern.apply(x, y1, comm);
    compacted.apply(x, y2, comm);
    for (const GlobalRow g : range) {
      EXPECT_NEAR(y1[g], y2[g], 1e-12);
    }
    EXPECT_LT(compacted.local_nnz(), dense_pattern.local_nnz());
  });
}

TEST(FactoryTest, Ic0Registered) {
  const Spd sys(10, 1);
  DistCsrMatrix A = sys.matrix(row_range(GlobalRow{0}, 10));
  EXPECT_EQ(make_preconditioner(PreconditionerKind::kBlockJacobiIc0, A)->name(),
            "block-jacobi/ic0");
}

}  // namespace
}  // namespace neuro::solver

// Tests for the distributed linear-algebra layer: vectors, CSR mat-vec with
// ghost exchange, preconditioners, and the Krylov solvers — including
// rank-count sweeps asserting that parallel results match serial ones.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/check.h"
#include "base/rng.h"
#include "par/communicator.h"
#include "solver/dist_matrix.h"
#include "solver/dist_vector.h"
#include "solver/krylov.h"
#include "solver/preconditioner.h"

namespace neuro::solver {
namespace {

/// Dense reference matrix with helpers to build per-rank DistCsrMatrix views.
struct DenseSystem {
  int n = 0;
  std::vector<double> A;  // row-major dense
  std::vector<double> b;

  static DenseSystem random_spd(int n, std::uint64_t seed) {
    DenseSystem s;
    s.n = n;
    s.A.assign(static_cast<std::size_t>(n) * n, 0.0);
    s.b.resize(static_cast<std::size_t>(n));
    Rng rng(seed);
    // Banded symmetric diagonally dominant ⇒ SPD; bandedness keeps the CSR
    // realistic (FEM-like) and exercises ghost exchange at partition edges.
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j <= std::min(n - 1, i + 4); ++j) {
        const double v = rng.uniform(-1.0, 1.0);
        s.A[static_cast<std::size_t>(i) * n + j] = v;
        s.A[static_cast<std::size_t>(j) * n + i] = v;
      }
    }
    for (int i = 0; i < n; ++i) {
      double off = 0;
      for (int j = 0; j < n; ++j) {
        if (j != i) off += std::abs(s.A[static_cast<std::size_t>(i) * n + j]);
      }
      s.A[static_cast<std::size_t>(i) * n + i] = off + rng.uniform(1.0, 2.0);
      s.b[static_cast<std::size_t>(i)] = rng.uniform(-5.0, 5.0);
    }
    return s;
  }

  /// Unsymmetric variant (for GMRES/BiCGStab): adds a skew component while
  /// keeping diagonal dominance (so ILU(0) stays stable).
  static DenseSystem random_unsymmetric(int n, std::uint64_t seed) {
    DenseSystem s = random_spd(n, seed);
    Rng rng(seed + 17);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j <= std::min(n - 1, i + 4); ++j) {
        const double skew = 0.3 * rng.uniform(-1.0, 1.0);
        s.A[static_cast<std::size_t>(i) * n + j] += skew;
        s.A[static_cast<std::size_t>(j) * n + i] -= skew;
      }
    }
    return s;
  }

  [[nodiscard]] DistCsrMatrix local_block(RowRange range) const {
    std::vector<int> row_ptr{0};
    std::vector<int> cols;
    std::vector<double> values;
    for (int i = range.first.value(); i < range.second.value(); ++i) {
      for (int j = 0; j < n; ++j) {
        const double v = A[static_cast<std::size_t>(i) * n + j];
        if (v != 0.0) {
          cols.push_back(j);
          values.push_back(v);
        }
      }
      row_ptr.push_back(static_cast<int>(cols.size()));
    }
    return DistCsrMatrix(n, range, std::move(row_ptr), std::move(cols),
                         std::move(values));
  }

  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& x) const {
    std::vector<double> y(static_cast<std::size_t>(n), 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        y[static_cast<std::size_t>(i)] +=
            A[static_cast<std::size_t>(i) * n + j] * x[static_cast<std::size_t>(j)];
      }
    }
    return y;
  }
};

RowRange rank_range(int n, int nranks, int rank) {
  const int base = n / nranks, extra = n % nranks;
  const int begin = rank * base + std::min(rank, extra);
  return {GlobalRow{begin}, GlobalRow{begin + base + (rank < extra ? 1 : 0)}};
}

TEST(DistVectorTest, LocalOpsAndReductions) {
  par::run_spmd(3, [](par::Communicator& comm) {
    const auto range = rank_range(10, 3, comm.rank());
    DistVector x(10, range);
    for (const GlobalRow g : range) x[g] = g.value();
    DistVector y(10, range, 1.0);
    y.axpy(2.0, x, comm);  // y = 1 + 2g
    EXPECT_DOUBLE_EQ(y[range.first], 1.0 + 2.0 * range.first.value());
    // dot(x, 1-vector) = sum of 0..9 = 45
    DistVector ones(10, range, 1.0);
    EXPECT_DOUBLE_EQ(x.dot(ones, comm), 45.0);
    EXPECT_NEAR(ones.norm2(comm), std::sqrt(10.0), 1e-12);
    const auto all = x.gather_all(comm);
    ASSERT_EQ(all.size(), 10u);
    for (int g = 0; g < 10; ++g) EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(g)], g);
  });
}

TEST(DistVectorTest, GlobalIndexBoundsChecked) {
  DistVector x(10, {GlobalRow{2}, GlobalRow{5}});
  EXPECT_NO_THROW(x[GlobalRow{3}]);
  EXPECT_THROW(x[GlobalRow{1}], CheckError);
  EXPECT_THROW(x[GlobalRow{5}], CheckError);
}

class SpmvRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(SpmvRankSweep, MatchesDenseReference) {
  const int P = GetParam();
  const DenseSystem sys = DenseSystem::random_spd(37, 11);
  std::vector<double> x_ref(37);
  Rng rng(3);
  for (auto& v : x_ref) v = rng.uniform(-1, 1);
  const std::vector<double> y_ref = sys.multiply(x_ref);

  par::run_spmd(P, [&](par::Communicator& comm) {
    const auto range = rank_range(37, P, comm.rank());
    DistCsrMatrix A = sys.local_block(range);
    A.setup_ghosts(comm);
    DistVector x(37, range), y(37, range);
    for (const GlobalRow g : range) {
      x[g] = x_ref[g.index()];
    }
    A.apply(x, y, comm);
    for (const GlobalRow g : range) {
      EXPECT_NEAR(y[g], y_ref[g.index()], 1e-10);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, SpmvRankSweep, ::testing::Values(1, 2, 3, 5, 8));

TEST(DistMatrixTest, ValueAtAndFindEntry) {
  const DenseSystem sys = DenseSystem::random_spd(10, 2);
  DistCsrMatrix A = sys.local_block(row_range(GlobalRow{0}, 10));
  EXPECT_DOUBLE_EQ(A.value_at(GlobalRow{3}, GlobalRow{3}), sys.A[33]);
  // Outside band, not stored:
  EXPECT_DOUBLE_EQ(A.value_at(GlobalRow{0}, GlobalRow{9}), 0.0);
  double* e = A.find_entry(GlobalRow{2}, GlobalRow{3});
  ASSERT_NE(e, nullptr);
  *e = 42.0;
  EXPECT_DOUBLE_EQ(A.value_at(GlobalRow{2}, GlobalRow{3}), 42.0);
  EXPECT_EQ(A.find_entry(GlobalRow{0}, GlobalRow{9}), nullptr);
}

TEST(DistMatrixTest, DiagonalBlockExtraction) {
  const DenseSystem sys = DenseSystem::random_spd(12, 5);
  DistCsrMatrix A = sys.local_block(row_range(GlobalRow{4}, 4));
  std::vector<int> rp, cols;
  std::vector<double> vals;
  A.extract_diagonal_block(rp, cols, vals);
  ASSERT_EQ(rp.size(), 5u);
  for (std::size_t p = 0; p < cols.size(); ++p) {
    EXPECT_GE(cols[p], 0);
    EXPECT_LT(cols[p], 4);
  }
  // Every extracted value matches the dense source.
  for (int r = 0; r < 4; ++r) {
    for (int p = rp[static_cast<std::size_t>(r)]; p < rp[static_cast<std::size_t>(r) + 1]; ++p) {
      EXPECT_DOUBLE_EQ(vals[static_cast<std::size_t>(p)],
                       sys.A[static_cast<std::size_t>(r + 4) * 12 +
                             static_cast<std::size_t>(cols[static_cast<std::size_t>(p)] + 4)]);
    }
  }
}

TEST(PreconditionerTest, JacobiDividesByDiagonal) {
  const DenseSystem sys = DenseSystem::random_spd(8, 7);
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, 8);
    DistCsrMatrix A = sys.local_block(range);
    JacobiPreconditioner M(A);
    DistVector r(8, range, 1.0), z(8, range);
    M.apply(r, z, comm);
    for (const GlobalRow i : range) {
      EXPECT_NEAR(z[i], 1.0 / sys.A[i.index() * 8 + i.index()], 1e-14);
    }
  });
}

TEST(PreconditionerTest, Ilu0IsExactForTriangularPattern) {
  // For a matrix whose pattern suffers no fill-in (tridiagonal), ILU(0) is an
  // exact LU factorization, so M⁻¹ A = I: one preconditioned "solve" of any
  // vector returns A⁻¹ r exactly.
  const int n = 12;
  std::vector<int> rp{0};
  std::vector<int> cols;
  std::vector<double> vals;
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(0, i - 1); j <= std::min(n - 1, i + 1); ++j) {
      cols.push_back(j);
      vals.push_back(j == i ? 4.0 : -1.0);
    }
    rp.push_back(static_cast<int>(cols.size()));
  }
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, n);
    DistCsrMatrix A(n, range, rp, cols, vals);
    BlockJacobiIlu0 M(A);
    DistVector r(n, range, 1.0), z(n, range), back(n, range);
    M.apply(r, z, comm);
    A.apply(z, back, comm);  // should reproduce r
    for (const GlobalRow i : range) EXPECT_NEAR(back[i], 1.0, 1e-12);
  });
}

TEST(PreconditionerTest, FactoryProducesAllKinds) {
  const DenseSystem sys = DenseSystem::random_spd(6, 9);
  DistCsrMatrix A = sys.local_block(row_range(GlobalRow{0}, 6));
  EXPECT_EQ(make_preconditioner(PreconditionerKind::kNone, A)->name(), "none");
  EXPECT_EQ(make_preconditioner(PreconditionerKind::kJacobi, A)->name(), "jacobi");
  EXPECT_EQ(make_preconditioner(PreconditionerKind::kBlockJacobiIlu0, A)->name(),
            "block-jacobi/ilu0");
  EXPECT_EQ(make_preconditioner(PreconditionerKind::kSsor, A)->name(), "ssor");
}

struct KrylovCase {
  const char* name;
  SolveStats (*solve)(const LinearOperator&, const DistVector&, DistVector&,
                      const Preconditioner&, const SolverConfig&, par::Communicator&);
  bool needs_spd;
};

class KrylovSolverTest
    : public ::testing::TestWithParam<std::tuple<KrylovCase, int>> {};

TEST_P(KrylovSolverTest, SolvesAndMatchesSerial) {
  const auto& [method, P] = GetParam();
  const int n = 60;
  const DenseSystem sys = method.needs_spd ? DenseSystem::random_spd(n, 21)
                                           : DenseSystem::random_unsymmetric(n, 21);

  // Serial reference solution.
  std::vector<double> x_serial(static_cast<std::size_t>(n));
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, n);
    DistCsrMatrix A = sys.local_block(range);
    A.setup_ghosts(comm);
    BlockJacobiIlu0 M(A);
    DistVector b(n, range), x(n, range);
    for (const GlobalRow i : range) b[i] = sys.b[i.index()];
    SolverConfig cfg;
    cfg.rtol = 1e-10;
    const SolveStats stats = method.solve(A, b, x, M, cfg, comm);
    EXPECT_TRUE(stats.converged) << method.name;
    EXPECT_LT(true_residual_norm(A, b, x, comm), 1e-7);
    for (const GlobalRow i : range) x_serial[i.index()] = x[i];
  });

  // Parallel must agree.
  par::run_spmd(P, [&](par::Communicator& comm) {
    const auto range = rank_range(n, P, comm.rank());
    DistCsrMatrix A = sys.local_block(range);
    A.setup_ghosts(comm);
    BlockJacobiIlu0 M(A);
    DistVector b(n, range), x(n, range);
    for (const GlobalRow g : range) {
      b[g] = sys.b[g.index()];
    }
    SolverConfig cfg;
    cfg.rtol = 1e-10;
    const SolveStats stats = method.solve(A, b, x, M, cfg, comm);
    EXPECT_TRUE(stats.converged) << method.name << " P=" << P;
    for (const GlobalRow g : range) {
      EXPECT_NEAR(x[g], x_serial[g.index()], 1e-6)
          << method.name << " P=" << P;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndRanks, KrylovSolverTest,
    ::testing::Combine(::testing::Values(KrylovCase{"gmres", &gmres, false},
                                         KrylovCase{"cg", &cg, true},
                                         KrylovCase{"bicgstab", &bicgstab, false}),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_P" +
             std::to_string(std::get<1>(info.param));
    });

TEST(KrylovTest, PreconditioningReducesIterations) {
  const int n = 80;
  const DenseSystem sys = DenseSystem::random_spd(n, 33);
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, n);
    DistCsrMatrix A = sys.local_block(range);
    A.setup_ghosts(comm);
    DistVector b(n, range);
    for (const GlobalRow i : range) b[i] = sys.b[i.index()];
    SolverConfig cfg;
    cfg.rtol = 1e-8;

    auto iterations = [&](const Preconditioner& M) {
      DistVector x(n, range);
      const SolveStats s = gmres(A, b, x, M, cfg, comm);
      EXPECT_TRUE(s.converged);
      return s.iterations;
    };
    const int none = iterations(IdentityPreconditioner{});
    const int jacobi = iterations(JacobiPreconditioner{A});
    const int ilu = iterations(BlockJacobiIlu0{A});
    EXPECT_LE(ilu, jacobi);
    EXPECT_LE(jacobi, none + 1);
  });
}

TEST(KrylovTest, ZeroRhsConvergesImmediately) {
  const DenseSystem sys = DenseSystem::random_spd(10, 4);
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, 10);
    DistCsrMatrix A = sys.local_block(range);
    A.setup_ghosts(comm);
    IdentityPreconditioner M;
    DistVector b(10, range), x(10, range);
    const SolveStats s = gmres(A, b, x, M, SolverConfig{}, comm);
    EXPECT_TRUE(s.converged);
    EXPECT_EQ(s.iterations, 0);
  });
}

TEST(KrylovTest, RestartedGmresStillConverges) {
  const int n = 70;
  const DenseSystem sys = DenseSystem::random_unsymmetric(n, 5);
  par::run_spmd(2, [&](par::Communicator& comm) {
    const auto range = rank_range(n, 2, comm.rank());
    DistCsrMatrix A = sys.local_block(range);
    A.setup_ghosts(comm);
    JacobiPreconditioner M(A);
    DistVector b(n, range), x(n, range);
    for (const GlobalRow g : range) {
      b[g] = sys.b[g.index()];
    }
    SolverConfig cfg;
    cfg.gmres_restart = 5;  // force several restart cycles
    cfg.rtol = 1e-9;
    const SolveStats s = gmres(A, b, x, M, cfg, comm);
    EXPECT_TRUE(s.converged);
    EXPECT_LT(true_residual_norm(A, b, x, comm) / s.initial_residual, 1e-8);
  });
}

TEST(KrylovTest, HistoryIsMonotoneForCg) {
  const DenseSystem sys = DenseSystem::random_spd(40, 6);
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, 40);
    DistCsrMatrix A = sys.local_block(range);
    A.setup_ghosts(comm);
    BlockJacobiIlu0 M(A);
    DistVector b(40, range, 1.0), x(40, range);
    SolverConfig cfg;
    cfg.record_history = true;
    const SolveStats s = cg(A, b, x, M, cfg, comm);
    EXPECT_TRUE(s.converged);
    ASSERT_GE(s.history.size(), 2u);
    EXPECT_LT(s.history.back(), s.history.front());
  });
}

TEST(KrylovTest, CgRejectsIndefiniteMatrix) {
  // -I is negative definite: CG must detect pᵀAp <= 0 and report it as a
  // typed breakdown (an input-class failure the caller can react to), not an
  // invariant abort.
  std::vector<int> rp{0, 1, 2, 3};
  std::vector<int> cols{0, 1, 2};
  std::vector<double> vals{-1.0, -1.0, -1.0};
  par::run_spmd(1, [&](par::Communicator& comm) {
    const RowRange range = row_range(GlobalRow{0}, 3);
    DistCsrMatrix A(3, range, rp, cols, vals);
    A.setup_ghosts(comm);
    IdentityPreconditioner M;
    DistVector b(3, range, 1.0), x(3, range);
    const SolveStats s = cg(A, b, x, M, SolverConfig{}, comm);
    EXPECT_FALSE(s.converged);
    EXPECT_EQ(s.stop_reason, StopReason::kBreakdown);
    EXPECT_NE(s.stop_message.find("positive definite"), std::string::npos);
  });
}

}  // namespace
}  // namespace neuro::solver

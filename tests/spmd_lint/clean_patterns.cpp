// check_spmd fixture: legitimate SPMD patterns that must NOT be flagged —
// rank-derived data partitioning, rank-derived peer selection with uniform
// tags, collectives on the uniform path after balanced branches, and a
// deliberately divergent collective carrying a NEURO_SPMD_OK suppression.
//
// EXPECT-CLEAN
#include "par/communicator.h"

#include <algorithm>
#include <span>
#include <vector>

namespace neuro {

// Rank-derived *indices* are the normal way to split work; no control flow
// depends on them here.
double slab_partition(par::Communicator& comm, std::span<const double> all) {
  const int nranks = comm.size();
  const int rank = comm.rank();
  const std::size_t chunk = all.size() / static_cast<std::size_t>(nranks);
  const std::size_t begin = static_cast<std::size_t>(rank) * chunk;
  const std::size_t end = std::min(all.size(), begin + chunk);
  double local = 0.0;
  for (std::size_t i = begin; i < end; ++i) local += all[i];
  return comm.allreduce_sum(local);
}

// Neighbor exchange: the peer is rank-derived (that is the point of p2p),
// but the tag is uniform, so send/recv keys match.
std::vector<double> ring_shift(par::Communicator& comm, std::span<const double> data) {
  constexpr int kTag = 42;
  const int next = (comm.rank() + 1) % comm.size();
  const int prev = (comm.rank() + comm.size() - 1) % comm.size();
  comm.isend(next, kTag, data);
  return comm.recv<double>(prev, kTag);
}

// Branching on replicated state is fine: every rank takes the same branch,
// so the collectives inside are still reached by the whole team.
double replicated_branch(par::Communicator& comm, bool use_fast_path, double local) {
  if (use_fast_path) {
    return comm.allreduce_sum(local);
  }
  comm.barrier();
  return comm.allreduce_max(local);
}

// Root-only work that contains no collective is the canonical safe use of a
// rank conditional.
void root_only_bookkeeping(par::Communicator& comm, std::vector<double>& log) {
  const double total = comm.allreduce_sum(1.0);
  if (comm.rank() == 0) {
    log.push_back(total);
  }
}

// A genuinely divergent collective the author has proven safe out of band:
// only the suppression marker keeps this out of the report.
void suppressed_divergence(par::Communicator& comm) {
  if (comm.rank() == 0 && comm.size() == 1) {
    // NEURO_SPMD_OK(size()==1 makes rank 0 the whole team)
    comm.barrier();
  }
}

}  // namespace neuro

// check_spmd fixture: point-to-point calls whose tag is computed from the
// rank. The mailbox matches on (src, dst, tag); a rank-dependent tag means
// the sender and receiver compute different keys and the recv times out.
//
// EXPECT: divergent-tag@16
// EXPECT: divergent-tag@22
// EXPECT: divergent-tag@27
#include "par/communicator.h"

#include <span>
#include <vector>

namespace neuro {

void send_rank_tag(par::Communicator& comm, std::span<const double> data) {
  comm.send(0, 100 + comm.rank(), data);  // receiver expects a fixed tag
}

std::vector<double> recv_rank_tag(par::Communicator& comm) {
  const int me = comm.rank();
  const int tag = me * 7;
  return comm.recv<double>(0, tag);  // sender tagged with its own rank math
}

void isend_rank_tag(par::Communicator& comm, std::span<const int> data) {
  const int next = (comm.rank() + 1) % comm.size();
  comm.isend(next, next, data);  // rank-derived dst is fine; rank-derived tag is not
}

}  // namespace neuro

// check_spmd fixture: rank-dependent return/throw paths that bail out of
// the SPMD body while the remaining ranks proceed into a collective.
//
// EXPECT: early-exit-past-collective@14
// EXPECT: early-exit-past-collective@24
#include "par/communicator.h"

#include <stdexcept>

namespace neuro {

double bail_before_reduce(par::Communicator& comm, double local) {
  if (comm.rank() > 2) {
    return local;  // ranks 3+ leave; ranks 0..2 block in allreduce below
  }
  return comm.allreduce_sum(local);
}

double throw_before_barrier(par::Communicator& comm, double local) {
  const int me = comm.rank();
  const int quota = 8 / (me + 1);
  if (quota < 2) {
    // Only high ranks trip this, so low ranks wait at the barrier forever.
    throw std::runtime_error("quota exhausted");
  }
  comm.barrier();
  return local;
}

}  // namespace neuro

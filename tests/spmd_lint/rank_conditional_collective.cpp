// check_spmd fixture: collectives gated on the rank. Every seeded bug line
// is declared below; tools/lint/check_spmd.py --self-test fails if any is
// missed or if anything else in this file is flagged.
//
// EXPECT: rank-conditional-collective@19
// EXPECT: rank-conditional-collective@27
// EXPECT: rank-conditional-collective@33
#include "par/communicator.h"

#include <span>
#include <vector>

namespace neuro {

void helper_reduce(std::vector<double>& data, par::Communicator& comm);

void direct_gate(par::Communicator& comm) {
  if (comm.rank() == 0) {
    comm.barrier();  // only rank 0 arrives: the team deadlocks
  }
}

void tainted_local_gate(par::Communicator& comm) {
  const int me = comm.rank();
  double x = 1.0;
  if (me % 2 == 0) {
    x = comm.allreduce_sum(x);  // odd ranks never publish
  }
  (void)x;
}

void indirect_gate(par::Communicator& comm, std::vector<double>& data) {
  if (comm.rank() < 2) helper_reduce(data, comm);  // callee runs collectives
}

void helper_reduce(std::vector<double>& data, par::Communicator& comm) {
  comm.allreduce_sum(std::span<double>(data));
}

}  // namespace neuro

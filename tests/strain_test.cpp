// Tests for per-element strain/stress post-processing.
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "fem/deformation_solver.h"
#include "fem/strain.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"

namespace neuro::fem {
namespace {

mesh::TetMesh block(int n = 5, double spacing = 2.0) {
  ImageL labels({n, n, n}, 1, {spacing, spacing, spacing});
  mesh::MesherConfig cfg;
  cfg.stride = 2;
  return mesh::mesh_labeled_volume(labels, cfg);
}

std::vector<Vec3> apply_field(const mesh::TetMesh& mesh,
                              const std::function<Vec3(const Vec3&)>& u) {
  std::vector<Vec3> out(static_cast<std::size_t>(mesh.num_nodes()));
  for (const mesh::NodeId n : mesh.node_ids()) {
    out[n.index()] = u(mesh.nodes[n]);
  }
  return out;
}

TEST(StrainTest, ZeroDisplacementZeroStrain) {
  const mesh::TetMesh mesh = block();
  const auto strains =
      element_strains(mesh, std::vector<Vec3>(static_cast<std::size_t>(mesh.num_nodes())));
  for (const auto& e : strains) {
    EXPECT_NEAR(e.volumetric(), 0.0, 1e-14);
    EXPECT_NEAR(e.von_mises(), 0.0, 1e-14);
  }
}

TEST(StrainTest, RigidMotionProducesNoStrain) {
  const mesh::TetMesh mesh = block();
  // Translation + small rotation about z (infinitesimal): strain-free.
  const auto u = apply_field(mesh, [](const Vec3& p) {
    const double w = 0.01;  // rotation angle
    return Vec3{1.0 - w * p.y, 2.0 + w * p.x, -0.5};
  });
  for (const auto& e : element_strains(mesh, u)) {
    EXPECT_NEAR(e.von_mises(), 0.0, 1e-12);
    EXPECT_NEAR(e.volumetric(), 0.0, 1e-12);
  }
}

TEST(StrainTest, UniaxialStretchIsExact) {
  const mesh::TetMesh mesh = block();
  const double a = 0.03;
  const auto u = apply_field(mesh, [&](const Vec3& p) { return Vec3{a * p.x, 0, 0}; });
  for (const auto& e : element_strains(mesh, u)) {
    EXPECT_NEAR(e.strain[0], a, 1e-12);
    EXPECT_NEAR(e.strain[1], 0.0, 1e-12);
    EXPECT_NEAR(e.volumetric(), a, 1e-12);
    // Von Mises of uniaxial tensor strain ε: 2ε/3.
    EXPECT_NEAR(e.von_mises(), 2.0 * a / 3.0, 1e-12);
  }
}

TEST(StrainTest, SimpleShearIsExact) {
  const mesh::TetMesh mesh = block();
  const double g = 0.02;  // engineering shear γxy
  const auto u = apply_field(mesh, [&](const Vec3& p) { return Vec3{g * p.y, 0, 0}; });
  for (const auto& e : element_strains(mesh, u)) {
    EXPECT_NEAR(e.strain[3], g, 1e-12);
    EXPECT_NEAR(e.volumetric(), 0.0, 1e-12);
    // Von Mises of pure shear (tensor εxy = γ/2): γ/√3.
    EXPECT_NEAR(e.von_mises(), g / std::sqrt(3.0), 1e-12);
  }
}

TEST(StressTest, UniaxialStrainStressMatchesHooke) {
  const mesh::TetMesh mesh = block();
  const double a = 0.01;
  const auto u = apply_field(mesh, [&](const Vec3& p) { return Vec3{a * p.x, 0, 0}; });
  const auto strains = element_strains(mesh, u);
  const Material m{1000.0, 0.3};
  const auto stresses = von_mises_stress(mesh, strains, MaterialMap(m));
  // Constrained uniaxial strain: σxx = a·E(1−ν)/((1+ν)(1−2ν)), σyy = σzz =
  // a·Eν/(...): von Mises = |σxx − σyy| = a·E/(1+ν) · ... compute directly.
  const double f = m.youngs_modulus / ((1 + m.poisson_ratio) * (1 - 2 * m.poisson_ratio));
  const double sxx = a * f * (1 - m.poisson_ratio);
  const double syy = a * f * m.poisson_ratio;
  const double expected = std::abs(sxx - syy);
  for (const double s : stresses) {
    EXPECT_NEAR(s, expected, 1e-9 * expected + 1e-9);
  }
}

TEST(StressTest, StiffTissueCarriesMoreStress) {
  ImageL labels({5, 5, 5}, 3, {2, 2, 2});
  for (int k = 0; k < 5; ++k)
    for (int j = 0; j < 5; ++j) {
      labels(2, j, k) = 5;  // stiff slab
      labels(3, j, k) = 5;
    }
  mesh::MesherConfig cfg;
  cfg.stride = 2;
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, cfg);
  const auto u = apply_field(mesh, [](const Vec3& p) { return Vec3{0.01 * p.x, 0, 0}; });
  const auto strains = element_strains(mesh, u);
  const auto stresses =
      von_mises_stress(mesh, strains, MaterialMap::heterogeneous_brain());
  double soft = 0, stiff = 0;
  int nsoft = 0, nstiff = 0;
  for (const mesh::TetId t : mesh.tet_ids()) {
    if (mesh.tet_labels[t] == 5) {
      stiff += stresses[t.index()];
      ++nstiff;
    } else {
      soft += stresses[t.index()];
      ++nsoft;
    }
  }
  ASSERT_GT(nstiff, 0);
  ASSERT_GT(nsoft, 0);
  EXPECT_GT(stiff / nstiff, 5.0 * soft / nsoft);
}

TEST(SummaryTest, VolumeWeightedMeanAndMax) {
  mesh::TetMesh mesh;
  mesh.nodes = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {2, 0, 0}, {0, 2, 0},
                {0, 0, 2}};
  using mesh::NodeId;
  mesh.tets = {{NodeId{0}, NodeId{1}, NodeId{2}, NodeId{3}},
               {NodeId{0}, NodeId{4}, NodeId{5}, NodeId{6}}};  // volumes 1/6 and 8/6
  mesh.tet_labels = {1, 1};
  const ScalarSummary s = summarize_per_element(mesh, {9.0, 0.0});
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.mean, 9.0 * (1.0 / 9.0), 1e-12);  // small tet is 1/9 of volume
  EXPECT_THROW(static_cast<void>(summarize_per_element(mesh, {1.0})), CheckError);
}

TEST(PipelineIntegrationTest, DeformationStrainsAreMeaningful) {
  // Drive a block with a squeeze and check the post-processed strain matches
  // the prescribed boundary strain scale.
  const mesh::TetMesh mesh = block(7, 2.0);
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    bcs.emplace_back(n, Vec3{0, 0, -0.05 * mesh.nodes[n].z});
  }
  DeformationSolveOptions opt;
  opt.solver.rtol = 1e-10;
  const auto result = solve_deformation(mesh, MaterialMap::homogeneous_brain(), bcs, opt);
  ASSERT_TRUE(result.stats.converged);
  const auto strains = element_strains(mesh, result.node_displacements);
  std::vector<double> vm(strains.size());
  for (std::size_t t = 0; t < strains.size(); ++t) vm[t] = strains[t].von_mises();
  const ScalarSummary s = summarize_per_element(mesh, vm);
  EXPECT_NEAR(s.mean, 0.05 * 2.0 / 3.0, 0.01);  // uniaxial −5% squeeze
  // Volumetric strain: uniform compression of 5% in z.
  double mean_vol = 0;
  for (const auto& e : strains) mean_vol += e.volumetric();
  EXPECT_NEAR(mean_vol / static_cast<double>(strains.size()), -0.05, 0.005);
}

}  // namespace
}  // namespace neuro::fem

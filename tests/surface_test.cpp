// Tests for the active surface: convergence onto distance-field and
// image-derived potentials, membrane smoothing, and FEM hand-off.
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "image/distance.h"
#include "image/filters.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "surface/active_surface.h"

namespace neuro::surface {
namespace {

/// Binary ball mask of radius r (voxels are unit-spaced).
ImageL ball_mask(int n, double r, Vec3 center) {
  ImageL mask({n, n, n}, 0);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        if (norm(Vec3(i, j, k) - center) <= r) mask(i, j, k) = 1;
      }
    }
  }
  return mask;
}

/// Lattice surface of a ball of radius `r`.
mesh::TriSurface ball_surface(int n, double r, Vec3 center) {
  mesh::MesherConfig cfg;
  cfg.stride = 1;
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(ball_mask(n, r, center), cfg);
  return mesh::extract_boundary_surface(mesh, {1});
}

TEST(ActiveSurfaceTest, ShrinksOntoSmallerBall) {
  // Start on a radius-10 ball, attract to a radius-7 ball: final vertices
  // must sit near radius 7.
  const Vec3 c{12, 12, 12};
  const mesh::TriSurface initial = ball_surface(25, 10.0, c);
  ASSERT_GT(initial.num_vertices(), 50);
  const ImageF sdf = signed_distance_to_label(ball_mask(25, 7.0, c), 1, 20.0);

  ActiveSurfaceConfig cfg;
  const auto result = deform_to_distance_field(initial, sdf, cfg);
  EXPECT_GT(result.iterations, 1);
  double mean_r = 0;
  for (const auto& v : result.surface.vertices) mean_r += norm(v - c);
  mean_r /= result.surface.num_vertices();
  EXPECT_NEAR(mean_r, 7.0, 1.0);
  EXPECT_LT(result.mean_abs_potential, 1.0);  // residual distance in voxels
}

TEST(ActiveSurfaceTest, ExpandsOntoLargerBall) {
  const Vec3 c{12, 12, 12};
  const mesh::TriSurface initial = ball_surface(25, 6.0, c);
  const ImageF sdf = signed_distance_to_label(ball_mask(25, 9.0, c), 1, 20.0);
  ActiveSurfaceConfig cfg;
  const auto result = deform_to_distance_field(initial, sdf, cfg);
  double mean_r = 0;
  for (const auto& v : result.surface.vertices) mean_r += norm(v - c);
  mean_r /= result.surface.num_vertices();
  EXPECT_NEAR(mean_r, 9.0, 1.0);
}

TEST(ActiveSurfaceTest, AlreadyConvergedSurfaceBarelyMoves) {
  const Vec3 c{12, 12, 12};
  const mesh::TriSurface initial = ball_surface(25, 8.0, c);
  const ImageF sdf = signed_distance_to_label(ball_mask(25, 8.0, c), 1, 20.0);
  ActiveSurfaceConfig cfg;
  const auto result = deform_to_distance_field(initial, sdf, cfg);
  double max_d = 0;
  for (const auto& d : result.displacements) max_d = std::max(max_d, norm(d));
  EXPECT_LT(max_d, 1.6);  // staircase corners settle by about a voxel
}

TEST(ActiveSurfaceTest, DisplacementsEqualFinalMinusInitial) {
  const Vec3 c{12, 12, 12};
  const mesh::TriSurface initial = ball_surface(25, 9.0, c);
  const ImageF sdf = signed_distance_to_label(ball_mask(25, 7.0, c), 1, 20.0);
  const auto result = deform_to_distance_field(initial, sdf, ActiveSurfaceConfig{});
  ASSERT_EQ(result.displacements.size(), initial.vertices.size());
  for (const mesh::VertId v : initial.vert_ids()) {
    EXPECT_NEAR(norm(result.surface.vertices[v] -
                     (initial.vertices[v] + result.displacements[v])),
                0.0, 1e-12);
  }
}

TEST(ActiveSurfaceTest, MaxStepClampHolds) {
  const Vec3 c{12, 12, 12};
  const mesh::TriSurface initial = ball_surface(25, 10.0, c);
  const ImageF sdf = signed_distance_to_label(ball_mask(25, 5.0, c), 1, 20.0);
  ActiveSurfaceConfig cfg;
  cfg.max_iterations = 1;
  cfg.max_step_mm = 0.25;
  const auto result = deform_to_distance_field(initial, sdf, cfg);
  for (const auto& d : result.displacements) {
    EXPECT_LE(norm(d), 0.25 + 1e-12);
  }
}

TEST(ActiveSurfaceTest, TensionSmoothsNoise) {
  // With zero external force, pure membrane tension must shrink/smooth a
  // surface: total area decreases monotonically.
  const Vec3 c{12, 12, 12};
  const mesh::TriSurface initial = ball_surface(25, 8.0, c);
  ImageF flat({25, 25, 25}, 0.0f);  // zero potential ⇒ zero external force
  ActiveSurfaceConfig cfg;
  cfg.max_iterations = 40;
  cfg.tension = 0.5;
  cfg.convergence_mm = 0.0;  // run all iterations
  const auto result = deform_to_potential(initial, flat, cfg);
  EXPECT_LT(mesh::surface_area(result.surface), mesh::surface_area(initial));
}

TEST(ActiveSurfaceTest, RejectsEmptySurface) {
  mesh::TriSurface empty;
  ImageF flat({4, 4, 4});
  EXPECT_THROW(deform_to_potential(empty, flat, ActiveSurfaceConfig{}), CheckError);
}

TEST(EdgePotentialTest, MinimaOnMatchingEdges) {
  // Two-intensity step: the potential must be lowest near the edge, and a
  // wrong gray-level prior must weaken (raise) that minimum.
  ImageF img({24, 24, 24}, 20.0f);
  for (int k = 0; k < 24; ++k)
    for (int j = 0; j < 24; ++j)
      for (int i = 12; i < 24; ++i) img(i, j, k) = 120.0f;

  const ImageF pot_right = edge_potential_from_image(img, 120.0, 30.0, 1.0);
  const ImageF pot_wrong = edge_potential_from_image(img, 250.0, 10.0, 1.0);
  // Edge voxel vs flat-region voxel.
  EXPECT_LT(pot_right.at(12, 12, 12), pot_right.at(3, 12, 12));
  EXPECT_LT(pot_right.at(12, 12, 12), pot_right.at(21, 12, 12));
  // The correct prior yields a deeper minimum at the edge.
  EXPECT_LT(pot_right.at(12, 12, 12), pot_wrong.at(12, 12, 12));
}

TEST(EdgePotentialTest, SurfaceLocksOntoImageEdge) {
  // Paper-style force: drive a surface onto an intensity step using only the
  // image (no segmentation).
  const Vec3 c{12, 12, 12};
  ImageF img({25, 25, 25}, 10.0f);
  for (int k = 0; k < 25; ++k) {
    for (int j = 0; j < 25; ++j) {
      for (int i = 0; i < 25; ++i) {
        if (norm(Vec3(i, j, k) - c) <= 8.0) img(i, j, k) = 130.0f;
      }
    }
  }
  const ImageF potential = edge_potential_from_image(img, 130.0, 40.0, 1.5);
  const mesh::TriSurface initial = ball_surface(25, 10.0, c);
  ActiveSurfaceConfig cfg;
  cfg.max_iterations = 600;
  cfg.force_scale = 40.0;  // potential is O(1); amplify to voxel scale
  const auto result = deform_to_potential(initial, potential, cfg);
  double mean_r = 0;
  for (const auto& v : result.surface.vertices) mean_r += norm(v - c);
  mean_r /= result.surface.num_vertices();
  EXPECT_NEAR(mean_r, 8.0, 1.6);
}

TEST(NodeDisplacementsTest, MapsThroughMeshNodes) {
  const Vec3 c{12, 12, 12};
  const mesh::TriSurface initial = ball_surface(25, 8.0, c);
  const ImageF sdf = signed_distance_to_label(ball_mask(25, 7.0, c), 1, 20.0);
  const auto result = deform_to_distance_field(initial, sdf, ActiveSurfaceConfig{});
  const auto bcs = node_displacements(result);
  ASSERT_EQ(bcs.size(), result.displacements.size());
  for (const mesh::VertId v : initial.vert_ids()) {
    EXPECT_EQ(bcs[v.index()].first, initial.mesh_nodes[v]);
    EXPECT_EQ(norm(bcs[v.index()].second - result.displacements[v]), 0.0);
  }
}

TEST(NodeDisplacementsTest, RejectsFreeStandingSurface) {
  ActiveSurfaceResult r;
  r.surface.vertices = {{0, 0, 0}};
  r.displacements = {{1, 0, 0}};
  EXPECT_THROW(node_displacements(r), CheckError);
}

}  // namespace
}  // namespace neuro::surface

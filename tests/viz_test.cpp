// Tests for the visualization substrate: colormaps, raster export, montage,
// boundary overlay, colored PLY and arrow OBJ export.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "base/check.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "viz/colormap.h"
#include "viz/surface_export.h"

namespace neuro::viz {
namespace {

std::string tmp(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ColormapTest, GrayIsLinearAndClamped) {
  EXPECT_EQ(map_color(ColormapKind::kGray, 0.0).r, 0);
  EXPECT_EQ(map_color(ColormapKind::kGray, 1.0).r, 255);
  const Rgb mid = map_color(ColormapKind::kGray, 0.5);
  EXPECT_NEAR(mid.r, 128, 1);
  EXPECT_EQ(mid.r, mid.g);
  EXPECT_EQ(mid.g, mid.b);
  EXPECT_EQ(map_color(ColormapKind::kGray, -5.0).r, 0);
  EXPECT_EQ(map_color(ColormapKind::kGray, 5.0).r, 255);
}

TEST(ColormapTest, MagnitudeRampIsMonotoneInLuma) {
  double prev = -1.0;
  for (double t = 0.0; t <= 1.0; t += 0.1) {
    const Rgb c = map_color(ColormapKind::kMagnitude, t);
    const double luma = 0.299 * c.r + 0.587 * c.g + 0.114 * c.b;
    EXPECT_GT(luma, prev) << "t=" << t;
    prev = luma;
  }
}

TEST(ColormapTest, DivergingEndpointsAndCenter) {
  const Rgb lo = map_color(ColormapKind::kDiverging, 0.0);
  const Rgb mid = map_color(ColormapKind::kDiverging, 0.5);
  const Rgb hi = map_color(ColormapKind::kDiverging, 1.0);
  EXPECT_GT(lo.b, 200);
  EXPECT_LT(lo.r, 50);
  EXPECT_GT(mid.r, 240);
  EXPECT_GT(mid.g, 240);
  EXPECT_GT(hi.r, 200);
  EXPECT_LT(hi.b, 50);
}

TEST(RgbImageTest, AccessAndBounds) {
  RgbImage img(4, 3);
  img.at(3, 2) = {1, 2, 3};
  EXPECT_EQ(img.at(3, 2).g, 2);
  EXPECT_THROW(img.at(4, 0), CheckError);
  EXPECT_THROW(RgbImage(0, 5), CheckError);
}

TEST(RgbImageTest, PpmRoundTripHeader) {
  const std::string path = tmp("neuro_viz.ppm");
  RgbImage img(5, 4);
  img.at(0, 0) = {255, 0, 0};
  img.write_ppm(path);
  std::ifstream f(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  f >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 5);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
  f.get();  // newline
  char rgb[3];
  f.read(rgb, 3);
  EXPECT_EQ(static_cast<unsigned char>(rgb[0]), 255);
  std::remove(path.c_str());
}

TEST(RenderTest, SliceAutoWindows) {
  ImageF img({6, 6, 2}, 10.0f);
  img.at(3, 3, 1) = 20.0f;
  const RgbImage panel = render_slice(img, 1, ColormapKind::kGray);
  EXPECT_EQ(panel.at(0, 0).r, 0);    // min of window
  EXPECT_EQ(panel.at(3, 3).r, 255);  // max of window
  EXPECT_THROW(render_slice(img, 5, ColormapKind::kGray), CheckError);
}

TEST(RenderTest, FieldMagnitude) {
  ImageV field({4, 4, 1});
  field(2, 2, 0) = Vec3{3, 4, 0};  // |v| = 5
  const RgbImage panel = render_field_magnitude(field, 0);
  // Peak magnitude maps to the bright end of the ramp.
  const Rgb peak = panel.at(2, 2);
  const Rgb zero = panel.at(0, 0);
  EXPECT_GT(static_cast<int>(peak.g), static_cast<int>(zero.g));
}

TEST(MontageTest, ConcatenatesWithSeparator) {
  RgbImage a(3, 2), b(4, 2);
  const RgbImage m = montage({a, b});
  EXPECT_EQ(m.width(), 3 + 2 + 4);
  EXPECT_EQ(m.height(), 2);
  RgbImage c(4, 3);
  EXPECT_THROW(montage({a, c}), CheckError);
  EXPECT_THROW(montage({}), CheckError);
}

TEST(OverlayTest, MarksBoundaryOnly) {
  ImageL mask({6, 6, 1}, 0);
  for (int j = 1; j < 5; ++j)
    for (int i = 1; i < 5; ++i) mask(i, j, 0) = 1;
  RgbImage panel(6, 6);
  overlay_mask_boundary(panel, mask, 0, {255, 0, 0});
  EXPECT_EQ(panel.at(1, 1).r, 255);  // boundary voxel
  EXPECT_EQ(panel.at(2, 2).r, 0);    // interior untouched
  EXPECT_EQ(panel.at(0, 0).r, 0);    // outside untouched
}

mesh::TriSurface small_surface() {
  ImageL labels({5, 5, 5}, 1);
  mesh::MesherConfig cfg;
  cfg.stride = 2;
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, cfg);
  return mesh::extract_boundary_surface(mesh, {1});
}

TEST(PlyExportTest, WritesValidHeaderAndCounts) {
  const mesh::TriSurface surface = small_surface();
  std::vector<double> scalars(static_cast<std::size_t>(surface.num_vertices()));
  for (std::size_t i = 0; i < scalars.size(); ++i) scalars[i] = static_cast<double>(i);
  const std::string path = tmp("neuro_viz.ply");
  write_ply_colored(path, surface, scalars);

  std::ifstream f(path);
  std::string line;
  int vertex_count = -1, face_count = -1;
  while (std::getline(f, line) && line != "end_header") {
    std::sscanf(line.c_str(), "element vertex %d", &vertex_count);
    std::sscanf(line.c_str(), "element face %d", &face_count);
  }
  EXPECT_EQ(vertex_count, surface.num_vertices());
  EXPECT_EQ(face_count, surface.num_triangles());
  int body_lines = 0;
  while (std::getline(f, line)) ++body_lines;
  EXPECT_EQ(body_lines, surface.num_vertices() + surface.num_triangles());
  std::remove(path.c_str());

  std::vector<double> bad(scalars.size() + 1);
  EXPECT_THROW(write_ply_colored(path, surface, bad), CheckError);
}

TEST(ArrowExportTest, SubsamplesLargestFirst) {
  std::vector<Vec3> origins(10), disp(10);
  for (int i = 0; i < 10; ++i) {
    origins[static_cast<std::size_t>(i)] = {static_cast<double>(i), 0, 0};
    disp[static_cast<std::size_t>(i)] = {0, 0, static_cast<double>(i)};
  }
  const std::string path = tmp("neuro_arrows.obj");
  write_arrows_obj(path, origins, disp, 3);
  std::ifstream f(path);
  std::string line;
  int v = 0, l = 0;
  bool has_largest = false;
  while (std::getline(f, line)) {
    v += line.rfind("v ", 0) == 0;
    l += line.rfind("l ", 0) == 0;
    has_largest = has_largest || line == "v 9 0 0";
  }
  EXPECT_EQ(v, 6);
  EXPECT_EQ(l, 3);
  EXPECT_TRUE(has_largest);  // the i=9 arrow (largest) must be kept
  std::remove(path.c_str());
}

}  // namespace
}  // namespace neuro::viz

// Tiny argument-parsing helpers shared by the neurofem CLI subcommands.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "base/check.h"

namespace neuro::cli {

/// Flags of the form `--key value` (every flag takes exactly one value),
/// collected after the subcommand name.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      NEURO_REQUIRE(key.rfind("--", 0) == 0, "expected --flag, got '" << key << "'");
      key = key.substr(2);
      NEURO_REQUIRE(i + 1 < argc, "flag --" << key << " needs a value");
      values_[key] = argv[++i];
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      NEURO_REQUIRE(!fallback.empty() || allow_empty_, "missing required flag --" << key);
      return fallback;
    }
    used_.push_back(key);
    return it->second;
  }

  [[nodiscard]] std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    NEURO_REQUIRE(it != values_.end(), "missing required flag --" << key);
    used_.push_back(key);
    return it->second;
  }

  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.push_back(key);
    return std::atoi(it->second.c_str());
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.push_back(key);
    return std::atof(it->second.c_str());
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    used_.push_back(key);
    const std::string& v = it->second;
    return v == "1" || v == "true" || v == "yes" || v == "on";
  }

  /// Errors out on flags nobody consumed (typo protection).
  void reject_unused() const {
    for (const auto& [key, value] : values_) {
      bool found = false;
      for (const auto& u : used_) found = found || u == key;
      NEURO_REQUIRE(found, "unknown flag --" << key);
    }
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::vector<std::string> used_;
  bool allow_empty_ = true;
};

}  // namespace neuro::cli

// `neurofem info` — volume inspection (geometry + intensity / label stats).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "image/metaimage.h"
#include "tools/cli_util.h"

namespace neuro::cli {

namespace {

/// Peeks the ElementType so info works on both voxel types.
std::string element_type_of(const std::string& mhd_path) {
  std::ifstream f(mhd_path);
  NEURO_REQUIRE(f.good(), "info: cannot open '" << mhd_path << "'");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("ElementType", 0) == 0) {
      const auto eq = line.find('=');
      if (eq != std::string::npos) {
        std::string v = line.substr(eq + 1);
        v.erase(0, v.find_first_not_of(" \t"));
        v.erase(v.find_last_not_of(" \t\r") + 1);
        return v;
      }
    }
  }
  return "";
}

}  // namespace

int cmd_info(int argc, char** argv) {
  const Args args(argc, argv, 2);
  const std::string path = args.require("volume");
  args.reject_unused();

  const std::string type = element_type_of(path);
  if (type == "MET_FLOAT") {
    const ImageF img = read_metaimage_f(path);
    double lo = 1e300, hi = -1e300, sum = 0;
    for (const float v : img.data()) {
      lo = std::min(lo, static_cast<double>(v));
      hi = std::max(hi, static_cast<double>(v));
      sum += v;
    }
    std::printf("%s: MET_FLOAT %dx%dx%d, spacing %.3g/%.3g/%.3g mm, origin "
                "(%.3g, %.3g, %.3g)\n",
                path.c_str(), img.dims().x, img.dims().y, img.dims().z,
                img.spacing().x, img.spacing().y, img.spacing().z, img.origin().x,
                img.origin().y, img.origin().z);
    std::printf("intensity: min %.3g, max %.3g, mean %.3g over %zu voxels\n", lo, hi,
                sum / static_cast<double>(img.size()), img.size());
  } else if (type == "MET_UCHAR") {
    const ImageL img = read_metaimage_l(path);
    std::map<int, std::size_t> counts;
    for (const auto v : img.data()) ++counts[v];
    std::printf("%s: MET_UCHAR %dx%dx%d, spacing %.3g/%.3g/%.3g mm\n", path.c_str(),
                img.dims().x, img.dims().y, img.dims().z, img.spacing().x,
                img.spacing().y, img.spacing().z);
    std::printf("labels:");
    for (const auto& [label, count] : counts) {
      std::printf(" %d:%zu", label, count);
    }
    std::printf("\n");
  } else {
    NEURO_CHECK_MSG(false, "info: unsupported ElementType '" << type << "'");
  }
  return 0;
}

}  // namespace neuro::cli

// `neurofem mesh` — labeled-volume tetrahedral meshing with quality report
// and boundary-surface export.
#include <cstdio>
#include <sstream>

#include "image/metaimage.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "tools/cli_util.h"

namespace neuro::cli {

int cmd_mesh(int argc, char** argv) {
  const Args args(argc, argv, 2);
  const std::string labels_path = args.require("labels");
  const std::string out = args.require("out");
  const int stride = args.get_int("stride", 2);
  const std::string keep = args.get("keep", "all");
  args.reject_unused();

  const ImageL labels = read_metaimage_l(labels_path);

  mesh::MesherConfig config;
  config.stride = stride;
  if (keep != "all") {
    std::istringstream ss(keep);
    std::string token;
    while (std::getline(ss, token, ',')) {
      config.keep_labels.push_back(static_cast<std::uint8_t>(std::atoi(token.c_str())));
    }
  }

  std::printf("meshing at stride %d (keep: %s)...\n", stride, keep.c_str());
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, config);
  const mesh::QualityStats quality = mesh::quality_stats(mesh);
  std::printf("mesh: %d nodes, %d tets (%d equations as an elasticity system)\n",
              mesh.num_nodes(), mesh.num_tets(), 3 * mesh.num_nodes());
  std::printf("quality: min %.3f, mean %.3f (radius ratio); volume %.0f mm^3\n",
              quality.min_quality, quality.mean_quality, mesh::total_volume(mesh));

  const std::vector<std::uint8_t> surf_labels =
      config.keep_labels.empty() ? [&] {
        std::vector<std::uint8_t> all;
        std::array<bool, 256> seen{};
        for (const auto l : mesh.tet_labels) seen[l] = true;
        for (int l = 0; l < 256; ++l) {
          if (seen[static_cast<std::size_t>(l)]) {
            all.push_back(static_cast<std::uint8_t>(l));
          }
        }
        return all;
      }()
                                 : config.keep_labels;
  const mesh::TriSurface surface = mesh::extract_boundary_surface(mesh, surf_labels);
  mesh::write_obj(out + "_surface.obj", surface);
  std::printf("wrote %s_surface.obj (%d vertices, %d triangles)\n", out.c_str(),
              surface.num_vertices(), surface.num_triangles());
  return 0;
}

}  // namespace neuro::cli

// `neurofem obs` — inspect observability artifacts: post-mortem bundles
// written by the flight recorder (obs::FlightRecorder) and live telemetry
// snapshots written by the SessionServer publisher. Formats are documented in
// docs/observability.md; machine validation lives in tools/obs/check_trace.py,
// this command is the human-facing pretty-printer.
//
//   neurofem obs --bundle postmortem_0001.json
//   neurofem obs --snapshot snapshot.json [--sessions 1]
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cli_util.h"

namespace neuro::cli {

namespace {

/// Minimal JSON document model: enough to walk the artifacts this repo
/// writes (objects, arrays, strings, numbers, booleans, null). Object member
/// order is preserved so output follows the file.
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> members;

  [[nodiscard]] const Json* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double num(const std::string& key, double fallback = 0.0) const {
    const Json* v = find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  [[nodiscard]] std::string text(const std::string& key) const {
    const Json* v = find(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : "";
  }
};

/// Recursive-descent parser over the whole input. Strict enough to reject
/// garbage, permissive about whitespace. NEURO_REQUIREs on malformed input
/// (the CLI maps CheckError to exit code 1).
class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  Json parse() {
    Json v = value();
    skip_ws();
    NEURO_REQUIRE(pos_ == text_.size(),
                  "obs: trailing junk at byte " << pos_ << " of JSON input");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    NEURO_REQUIRE(pos_ < text_.size(), "obs: unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    NEURO_REQUIRE(peek() == c, "obs: expected '" << c << "' at byte " << pos_
                                                 << ", got '" << text_[pos_]
                                                 << "'");
    ++pos_;
  }

  Json value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return bool_value();
    if (c == 'n') return null_value();
    return number_value();
  }

  Json object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      Json key = string_value();
      expect(':');
      v.members.emplace_back(std::move(key.str), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    expect('"');
    Json v;
    v.kind = Json::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        NEURO_REQUIRE(pos_ < text_.size(), "obs: dangling escape in string");
        const char e = text_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            // Artifacts in this repo never emit \u escapes; degrade to '?'
            // rather than failing on foreign input.
            NEURO_REQUIRE(pos_ + 4 <= text_.size(), "obs: truncated \\u escape");
            pos_ += 4;
            c = '?';
            break;
          default: c = e; break;
        }
      }
      v.str.push_back(c);
    }
    NEURO_REQUIRE(pos_ < text_.size(), "obs: unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  Json bool_value() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else {
      NEURO_REQUIRE(text_.compare(pos_, 5, "false") == 0,
                    "obs: bad literal at byte " << pos_);
      pos_ += 5;
    }
    return v;
  }

  Json null_value() {
    NEURO_REQUIRE(text_.compare(pos_, 4, "null") == 0,
                  "obs: bad literal at byte " << pos_);
    pos_ += 4;
    return Json{};
  }

  Json number_value() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    NEURO_REQUIRE(pos_ > start, "obs: expected a JSON value at byte " << pos_);
    Json v;
    v.kind = Json::Kind::kNumber;
    v.number = std::atof(text_.substr(start, pos_ - start).c_str());
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

Json load_json(const std::string& path) {
  std::ifstream f(path);
  NEURO_REQUIRE(f.good(), "obs: cannot open '" << path << "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  return JsonParser(buf.str()).parse();
}

void print_attrs(const Json* attrs, const char* indent) {
  if (attrs == nullptr || attrs->members.empty()) return;
  for (const auto& [key, value] : attrs->members) {
    switch (value.kind) {
      case Json::Kind::kString:
        std::printf("%s%s: %s\n", indent, key.c_str(), value.str.c_str());
        break;
      case Json::Kind::kNumber:
        std::printf("%s%s: %.17g\n", indent, key.c_str(), value.number);
        break;
      case Json::Kind::kBool:
        std::printf("%s%s: %s\n", indent, key.c_str(),
                    value.boolean ? "true" : "false");
        break;
      default:
        std::printf("%s%s: <%s>\n", indent, key.c_str(),
                    value.kind == Json::Kind::kArray ? "array" : "object");
        break;
    }
  }
}

void print_bundle(const Json& doc) {
  std::printf("post-mortem bundle (schema %s)\n", doc.text("schema").c_str());

  if (const Json* trigger = doc.find("trigger"); trigger != nullptr) {
    std::printf("trigger: %s\n", trigger->text("kind").c_str());
    const std::string detail = trigger->text("detail");
    if (!detail.empty()) std::printf("  detail: %s\n", detail.c_str());
    print_attrs(trigger->find("attrs"), "  ");
  }

  if (const Json* prov = doc.find("provenance"); prov != nullptr) {
    const Json* redact = prov->find("redact_timing");
    std::printf("provenance: build=%s, redact_timing=%s\n",
                prov->text("build_type").c_str(),
                redact != nullptr && redact->boolean ? "true" : "false");
    if (const Json* env = prov->find("env"); env != nullptr) {
      for (const auto& [key, value] : env->members) {
        if (!value.str.empty()) {
          std::printf("  %s=%s\n", key.c_str(), value.str.c_str());
        }
      }
    }
  }

  if (const Json* streams = doc.find("streams"); streams != nullptr) {
    std::printf("streams: %zu\n", streams->items.size());
    std::printf("  %6s %10s %10s %10s %10s\n", "rank", "recorded", "retained",
                "wrapped", "dropped");
    for (const auto& s : streams->items) {
      std::printf("  %6.0f %10.0f %10.0f %10.0f %10.0f\n", s.num("rank"),
                  s.num("recorded"), s.num("retained"), s.num("wrapped"),
                  s.num("dropped"));
    }
  }

  if (const Json* ring = doc.find("ring"); ring != nullptr) {
    const Json* events = ring->find("events");
    const std::size_t count = events != nullptr ? events->items.size() : 0;
    std::printf("ring: capacity %.0f, %zu events retained\n",
                ring->num("capacity"), count);
    // The tail is where the incident is: show the last few events.
    constexpr std::size_t kTail = 10;
    const std::size_t first = count > kTail ? count - kTail : 0;
    for (std::size_t i = first; i < count; ++i) {
      const Json& e = events->items[i];
      std::printf("  [%.0f/%.0f] %s %s", e.num("rank"), e.num("seq"),
                  e.text("kind").c_str(), e.text("name").c_str());
      if (const Json* dur = e.find("dur_us"); dur != nullptr) {
        std::printf(" (%.3f us)", dur->number);
      }
      std::printf("\n");
      print_attrs(e.find("args"), "      ");
    }
  }

  if (const Json* history = doc.find("residual_history"); history != nullptr) {
    // Summarize per (solver, rank): iterations seen and final residual.
    std::map<std::pair<std::string, int>, std::pair<int, double>> tail;
    for (const auto& row : history->items) {
      const auto key = std::make_pair(row.text("solver"),
                                      static_cast<int>(row.num("rank")));
      tail[key] = {static_cast<int>(row.num("iteration")),
                   row.num("residual")};
    }
    std::printf("residual history: %zu entries\n", history->items.size());
    for (const auto& [key, last] : tail) {
      std::printf("  %s rank %d: final iteration %d, residual %.6g\n",
                  key.first.c_str(), key.second, last.first, last.second);
    }
  }

  if (const Json* metrics = doc.find("metrics"); metrics != nullptr) {
    std::printf("metrics: %zu instruments captured\n", metrics->items.size());
  }
}

void print_snapshot(const Json& doc, bool show_sessions) {
  std::printf("telemetry snapshot (schema %s, sequence %.0f)\n",
              doc.text("schema").c_str(), doc.num("sequence"));

  if (const Json* queue = doc.find("queue"); queue != nullptr) {
    std::printf("queue: depth %.0f / capacity %.0f (max seen %.0f)\n",
                queue->num("depth"), queue->num("capacity"),
                queue->num("max_depth"));
    if (const Json* history = queue->find("history");
        history != nullptr && !history->items.empty()) {
      std::printf("  depth history (oldest first):");
      for (const auto& d : history->items) std::printf(" %.0f", d.number);
      std::printf("\n");
    }
  }

  if (const Json* slo = doc.find("slo"); slo != nullptr) {
    std::printf(
        "slo: target %.3gs, p50 %.3gs, p99 %.3gs, attainment %.1f%% "
        "(window %.0f, %.0f requests)\n",
        slo->num("target_seconds"), slo->num("p50_seconds"),
        slo->num("p99_seconds"), 100.0 * slo->num("attainment"),
        slo->num("window"), slo->num("requests"));
  }

  if (const Json* sessions = doc.find("sessions");
      sessions != nullptr && show_sessions) {
    std::printf("sessions: %zu\n", sessions->items.size());
    for (const auto& s : sessions->items) {
      std::printf(
          "  session %.0f: %.0f requests, p50 %.3gs, p99 %.3gs, "
          "attainment %.1f%%\n",
          s.num("session"), s.num("requests"), s.num("p50_seconds"),
          s.num("p99_seconds"), 100.0 * s.num("attainment"));
    }
  }

  if (const Json* stats = doc.find("stats"); stats != nullptr) {
    std::printf(
        "stats: %.0f submitted, %.0f admitted, %.0f usable, %.0f degraded, "
        "%.0f failed, %.0f crashes\n",
        stats->num("submitted"), stats->num("admitted"), stats->num("usable"),
        stats->num("degraded"), stats->num("failed"), stats->num("crashes"));
    const double rejected =
        stats->num("rejected_queue_full") + stats->num("rejected_deadline") +
        stats->num("rejected_unknown_session") +
        stats->num("rejected_draining");
    if (rejected > 0) {
      std::printf(
          "  rejected: %.0f (queue_full %.0f, deadline %.0f, "
          "unknown_session %.0f, draining %.0f)\n",
          rejected, stats->num("rejected_queue_full"),
          stats->num("rejected_deadline"),
          stats->num("rejected_unknown_session"),
          stats->num("rejected_draining"));
    }
  }
}

}  // namespace

int cmd_obs(int argc, char** argv) {
  const Args args(argc, argv, 2);
  const std::string bundle = args.get("bundle");
  const std::string snapshot = args.get("snapshot");
  const bool show_sessions = args.get_bool("sessions", true);
  args.reject_unused();
  NEURO_REQUIRE(bundle.empty() != snapshot.empty(),
                "obs: pass exactly one of --bundle FILE or --snapshot FILE");

  if (!bundle.empty()) {
    const Json doc = load_json(bundle);
    NEURO_REQUIRE(doc.text("schema") == "neuro.postmortem.v1",
                  "obs: '" << bundle << "' is not a post-mortem bundle (schema '"
                           << doc.text("schema") << "')");
    print_bundle(doc);
  } else {
    const Json doc = load_json(snapshot);
    NEURO_REQUIRE(doc.text("schema") == "neuro.snapshot.v1",
                  "obs: '" << snapshot << "' is not a telemetry snapshot (schema '"
                           << doc.text("schema") << "')");
    print_snapshot(doc, show_sessions);
  }
  return 0;
}

}  // namespace neuro::cli

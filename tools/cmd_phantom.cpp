// `neurofem phantom` — synthesize a neurosurgery case to MetaImage volumes.
#include <cstdio>

#include "image/metaimage.h"
#include "phantom/brain_phantom.h"
#include "tools/cli_util.h"

namespace neuro::cli {

int cmd_phantom(int argc, char** argv) {
  const Args args(argc, argv, 2);
  const std::string out = args.require("out");
  const int dims = args.get_int("dims", 96);
  const double spacing = args.get_double("spacing", 2.5);
  const int seed = args.get_int("seed", 42);
  const double sink = args.get_double("sink-mm", 8.0);

  phantom::PhantomConfig pc;
  pc.dims = {dims, dims, dims};
  pc.spacing = {spacing, spacing, spacing};
  pc.seed = static_cast<std::uint64_t>(seed);

  phantom::ShiftConfig shift;
  shift.max_sink_mm = sink;

  RigidTransform offset;
  offset.translation = {args.get_double("offset-x", 0.0),
                        args.get_double("offset-y", 0.0),
                        args.get_double("offset-z", 0.0)};
  args.reject_unused();

  std::printf("generating %d^3 case (spacing %.2f mm, %.1f mm sinking, seed %d)...\n",
              dims, spacing, sink, seed);
  const phantom::PhantomCase cas = phantom::make_case(pc, shift, offset);

  write_metaimage(out + "_preop", cas.preop);
  write_metaimage(out + "_preop_labels", cas.preop_labels);
  write_metaimage(out + "_intraop", cas.intraop);
  write_metaimage(out + "_intraop_labels", cas.intraop_labels);
  std::printf("wrote %s_{preop,preop_labels,intraop,intraop_labels}.mhd/.raw\n",
              out.c_str());
  return 0;
}

}  // namespace neuro::cli

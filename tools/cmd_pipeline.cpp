// `neurofem pipeline` — the full intraoperative registration run on
// MetaImage inputs, with result volumes and visual artifacts. Pass
// --trace-out trace.json (or set NEURO_TRACE=1 with --trace-out) for a
// Chrome trace of the run and --metrics-out metrics.ndjson for the metric
// snapshot (docs/observability.md).
#include <cstdio>
#include <fstream>

#include "core/pipeline.h"
#include "image/io.h"
#include "image/metaimage.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tools/cli_util.h"
#include "viz/colormap.h"
#include "viz/surface_export.h"

namespace neuro::cli {

int cmd_pipeline(int argc, char** argv) {
  const Args args(argc, argv, 2);
  const std::string preop_path = args.require("preop");
  const std::string labels_path = args.require("labels");
  const std::string intraop_path = args.require("intraop");
  const std::string out = args.require("out");
  const int ranks = args.get_int("ranks", 2);
  const int stride = args.get_int("stride", 3);
  const bool rigid = args.get_bool("rigid", true);
  const bool hetero = args.get_bool("hetero", false);
  const std::string trace_out = args.get("trace-out", "");
  const std::string metrics_out = args.get("metrics-out", "");
  args.reject_unused();

  // Tracing turns on when a trace destination is given or NEURO_TRACE asks
  // for it; a trace collected because of the env var still needs --trace-out
  // to land anywhere.
  if (!trace_out.empty()) obs::global().set_enabled(true);

  std::printf("loading volumes...\n");
  const ImageF preop = read_metaimage_f(preop_path);
  const ImageL labels = read_metaimage_l(labels_path);
  const ImageF intraop = read_metaimage_f(intraop_path);

  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = rigid;
  config.mesher.stride = stride;
  config.fem.nranks = ranks;
  config.heterogeneous_materials = hetero;

  std::printf("running the pipeline (%d ranks, mesher stride %d, rigid %s)...\n",
              ranks, stride, rigid ? "on" : "off");
  const core::PipelineResult result =
      core::run_intraop_pipeline(preop, labels, intraop, config);

  std::printf("\ntimeline:\n");
  for (const auto& stage : result.timeline) {
    std::printf("  %-26s %8.2f s\n", stage.name.c_str(), stage.seconds);
  }
  std::printf("FEM: %d equations, %s in %d iterations\n", result.fem.num_equations,
              result.fem.stats.converged ? "converged" : "NOT CONVERGED",
              result.fem.stats.iterations);

  write_metaimage(out + "_warped", result.warped_preop);
  write_metaimage(out + "_segmentation", result.segmentation.labels);
  // The recovered field, reusable via `neurofem warp` on further preop data.
  write_volume(out + "_backward_field.nvol", result.backward_field);

  // Mid-deformation axial montage: intraop | warped preop | field magnitude.
  double peak_k = 0;
  int best_k = intraop.dims().z / 2;
  for (int k = 0; k < intraop.dims().z; ++k) {
    double total = 0;
    for (int j = 0; j < intraop.dims().y; ++j) {
      for (int i = 0; i < intraop.dims().x; ++i) {
        total += norm(result.forward_field(i, j, k));
      }
    }
    if (total > peak_k) {
      peak_k = total;
      best_k = k;
    }
  }
  const viz::RgbImage panel = viz::montage(
      {viz::render_slice(intraop, best_k, viz::ColormapKind::kGray, 0, 255),
       viz::render_slice(result.warped_preop, best_k, viz::ColormapKind::kGray, 0, 255),
       viz::render_field_magnitude(result.forward_field, best_k)});
  panel.write_ppm(out + "_montage.ppm");

  // Deformed surface colored by displacement magnitude.
  std::vector<double> magnitudes;
  magnitudes.reserve(result.surface_match.displacements.size());
  for (const auto& d : result.surface_match.displacements) {
    magnitudes.push_back(norm(d));
  }
  viz::write_ply_colored(out + "_surface.ply", result.surface_match.surface,
                         magnitudes);

  std::printf("wrote %s_warped.mhd, %s_segmentation.mhd, %s_montage.ppm "
              "(axial k=%d), %s_surface.ply\n",
              out.c_str(), out.c_str(), out.c_str(), best_k, out.c_str());

  if (!trace_out.empty()) {
    std::ofstream os(trace_out, std::ios::binary);
    if (!os) {
      std::printf("ERROR: cannot open %s for writing\n", trace_out.c_str());
      return 1;
    }
    obs::global().write_chrome_trace(os);
    std::printf("wrote %s (%zu trace events; open in ui.perfetto.dev)\n",
                trace_out.c_str(), obs::global().event_count());
  }
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out, std::ios::binary);
    if (!os) {
      std::printf("ERROR: cannot open %s for writing\n", metrics_out.c_str());
      return 1;
    }
    obs::metrics().write_ndjson(os);
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return result.fem.stats.converged ? 0 : 1;
}

}  // namespace neuro::cli

// `neurofem pipeline` — the full intraoperative registration run on
// MetaImage inputs, with result volumes and visual artifacts.
#include <cstdio>

#include "core/pipeline.h"
#include "image/io.h"
#include "image/metaimage.h"
#include "tools/cli_util.h"
#include "viz/colormap.h"
#include "viz/surface_export.h"

namespace neuro::cli {

int cmd_pipeline(int argc, char** argv) {
  const Args args(argc, argv, 2);
  const std::string preop_path = args.require("preop");
  const std::string labels_path = args.require("labels");
  const std::string intraop_path = args.require("intraop");
  const std::string out = args.require("out");
  const int ranks = args.get_int("ranks", 2);
  const int stride = args.get_int("stride", 3);
  const bool rigid = args.get_bool("rigid", true);
  const bool hetero = args.get_bool("hetero", false);
  args.reject_unused();

  std::printf("loading volumes...\n");
  const ImageF preop = read_metaimage_f(preop_path);
  const ImageL labels = read_metaimage_l(labels_path);
  const ImageF intraop = read_metaimage_f(intraop_path);

  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = rigid;
  config.mesher.stride = stride;
  config.fem.nranks = ranks;
  config.heterogeneous_materials = hetero;

  std::printf("running the pipeline (%d ranks, mesher stride %d, rigid %s)...\n",
              ranks, stride, rigid ? "on" : "off");
  const core::PipelineResult result =
      core::run_intraop_pipeline(preop, labels, intraop, config);

  std::printf("\ntimeline:\n");
  for (const auto& stage : result.timeline) {
    std::printf("  %-26s %8.2f s\n", stage.name.c_str(), stage.seconds);
  }
  std::printf("FEM: %d equations, %s in %d iterations\n", result.fem.num_equations,
              result.fem.stats.converged ? "converged" : "NOT CONVERGED",
              result.fem.stats.iterations);

  write_metaimage(out + "_warped", result.warped_preop);
  write_metaimage(out + "_segmentation", result.segmentation.labels);
  // The recovered field, reusable via `neurofem warp` on further preop data.
  write_volume(out + "_backward_field.nvol", result.backward_field);

  // Mid-deformation axial montage: intraop | warped preop | field magnitude.
  double peak_k = 0;
  int best_k = intraop.dims().z / 2;
  for (int k = 0; k < intraop.dims().z; ++k) {
    double total = 0;
    for (int j = 0; j < intraop.dims().y; ++j) {
      for (int i = 0; i < intraop.dims().x; ++i) {
        total += norm(result.forward_field(i, j, k));
      }
    }
    if (total > peak_k) {
      peak_k = total;
      best_k = k;
    }
  }
  const viz::RgbImage panel = viz::montage(
      {viz::render_slice(intraop, best_k, viz::ColormapKind::kGray, 0, 255),
       viz::render_slice(result.warped_preop, best_k, viz::ColormapKind::kGray, 0, 255),
       viz::render_field_magnitude(result.forward_field, best_k)});
  panel.write_ppm(out + "_montage.ppm");

  // Deformed surface colored by displacement magnitude.
  std::vector<double> magnitudes;
  magnitudes.reserve(result.surface_match.displacements.size());
  for (const auto& d : result.surface_match.displacements) {
    magnitudes.push_back(norm(d));
  }
  viz::write_ply_colored(out + "_surface.ply", result.surface_match.surface,
                         magnitudes);

  std::printf("wrote %s_warped.mhd, %s_segmentation.mhd, %s_montage.ppm "
              "(axial k=%d), %s_surface.ply\n",
              out.c_str(), out.c_str(), out.c_str(), best_k, out.c_str());
  return result.fem.stats.converged ? 0 : 1;
}

}  // namespace neuro::cli

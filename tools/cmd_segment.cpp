// `neurofem segment` — intraoperative k-NN classification of one scan given
// an atlas segmentation (rigidly pre-aligned).
#include <cstdio>

#include "image/metaimage.h"
#include "seg/intraop.h"
#include "tools/cli_util.h"

namespace neuro::cli {

int cmd_segment(int argc, char** argv) {
  const Args args(argc, argv, 2);
  const std::string scan_path = args.require("scan");
  const std::string labels_path = args.require("labels");
  const std::string out = args.require("out");
  const int k = args.get_int("k", 5);
  const int per_class = args.get_int("prototypes", 60);
  const double dt_weight = args.get_double("dt-weight", 1.5);
  const double dt_saturation = args.get_double("dt-saturation-mm", 10.0);
  args.reject_unused();

  const ImageF scan = read_metaimage_f(scan_path);
  const ImageL atlas = read_metaimage_l(labels_path);

  // Model every label present in the atlas.
  seg::IntraopSegmentationConfig config;
  {
    std::array<bool, 256> seen{};
    for (const auto l : atlas.data()) seen[l] = true;
    for (int l = 0; l < 256; ++l) {
      if (seen[static_cast<std::size_t>(l)]) {
        config.classes.push_back(static_cast<std::uint8_t>(l));
      }
    }
  }
  config.k = k;
  config.prototypes_per_class = per_class;
  config.dt_weight = dt_weight;
  config.dt_saturation_mm = dt_saturation;

  std::printf("classifying %dx%dx%d scan with %zu classes (k=%d)...\n",
              scan.dims().x, scan.dims().y, scan.dims().z, config.classes.size(), k);
  const auto result = seg::segment_intraop(scan, atlas, config);
  write_metaimage(out + "_segmentation", result.labels);
  std::printf("wrote %s_segmentation.mhd (%zu prototypes in the model)\n",
              out.c_str(), result.prototypes.size());
  return 0;
}

}  // namespace neuro::cli

// `neurofem warp` — applies a stored deformation field to another volume.
//
// This is the paper's motivating use case: "previously acquired functional
// MRI (which cannot be acquired intraoperatively) [is] transformed to place
// the functional information in alignment with intraoperatively acquired
// morphologic MRI". Run `neurofem pipeline` once per intraoperative scan; it
// stores the recovered backward field; then warp any number of preoperative
// volumes (fMRI, PET, MRA, label maps) through it.
#include <cstdio>

#include "core/deformation_field.h"
#include "image/io.h"
#include "image/metaimage.h"
#include "tools/cli_util.h"

namespace neuro::cli {

int cmd_warp(int argc, char** argv) {
  const Args args(argc, argv, 2);
  const std::string field_path = args.require("field");
  const std::string out = args.require("out");
  const std::string volume_path = args.get("volume");
  const std::string labels_path = args.get("labels");
  args.reject_unused();
  NEURO_REQUIRE(!volume_path.empty() || !labels_path.empty(),
                "warp: pass --volume (float, trilinear) and/or --labels "
                "(nearest-neighbour)");

  const ImageV field = read_volume_v(field_path);
  std::printf("field: %dx%dx%d, spacing %.2f mm\n", field.dims().x, field.dims().y,
              field.dims().z, field.spacing().x);

  if (!volume_path.empty()) {
    const ImageF volume = read_metaimage_f(volume_path);
    NEURO_REQUIRE(volume.dims() == field.dims(),
                  "warp: volume grid " << volume.dims() << " != field grid "
                                       << field.dims());
    write_metaimage(out + "_warped", core::warp_backward(volume, field));
    std::printf("wrote %s_warped.mhd\n", out.c_str());
  }
  if (!labels_path.empty()) {
    const ImageL labels = read_metaimage_l(labels_path);
    NEURO_REQUIRE(labels.dims() == field.dims(),
                  "warp: label grid " << labels.dims() << " != field grid "
                                      << field.dims());
    write_metaimage(out + "_warped_labels",
                    core::warp_backward_labels(labels, field));
    std::printf("wrote %s_warped_labels.mhd\n", out.c_str());
  }
  return 0;
}

}  // namespace neuro::cli

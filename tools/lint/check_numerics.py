#!/usr/bin/env python3
"""Numerical-determinism and error-discipline static analyzer.

Every correctness claim this repo makes — Fig. 4 accuracy, BSR/CSR backend
equivalence, fallback-rung determinism — rests on bit-identical replay
(DESIGN.md §6). The regression tests assert that property on the schedules
they happen to run; this tool rejects the constructs that *break* it
statically, before any run:

  unordered-iteration   iteration over a std::unordered_map/unordered_set
                        whose loop body accumulates floating point, emits
                        communicator traffic, or writes exported output — the
                        hash-table layout of the run would leak into numerics
                        or report bytes
  nondet-source         a nondeterminism source (rand/srand, std::
                        random_device, time(), clock(), a monotonic-clock
                        ::now() read) outside the allowlisted timing and
                        seeded-RNG wrappers (src/obs/, base/stopwatch.h,
                        base/deadline.h, base/rng.*)
  float-exact-compare   a floating-point == / != against a literal outside
                        explicitly suppressed exact-replay/sentinel checks
  discarded-status      a call whose base::Status / base::Outcome<T> return
                        value is dropped on the floor — a swallowed deadline
                        violation or solver fault

Functions marked with the grep-able `NEURO_BITEXACT` macro
(base/numerics_annotations.h) opt into the strict profile: inside their
bodies *any* unordered-container iteration and *any* nondeterminism source is
a finding, allowlist or not.

Two engines share the reporting and suppression layer, in the mold of
check_spmd.py:

  clang  libclang over compile_commands.json (use --compdb). Preferred when
         the `clang.cindex` Python bindings are importable. Adds AST-accurate
         range-type detection (cross-file unordered members) and type-accurate
         unused-result detection on top of the shared textual line rules.
  text   a built-in tokenizer needing no toolchain. Runs everywhere,
         including gcc-only containers.

`--engine auto` (default) picks clang when importable, else text.
`--engine clang` exits with status 77 when libclang is unavailable so CTest
can mark the entry SKIPPED instead of failed.

Suppressions are grep-able markers on the finding's line or the line above:

    // NEURO_NONDET_OK(<reason>)         unordered-iteration, nondet-source,
                                         float-exact-compare
    NEURO_STATUS_IGNORED(<expr>, <reason>)   discarded-status (the macro also
                                         silences the class-level
                                         [[nodiscard]] at compile time)

`--self-test` runs the analyzer over tests/numerics_lint/ fixtures and checks
the findings against their `// EXPECT: <check>@<line>` comments (a fixture
with `// EXPECT-CLEAN` must produce none); any mismatch — missed seeded bug
or spurious extra — fails.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys

CHECK_UNORDERED = "unordered-iteration"
CHECK_NONDET = "nondet-source"
CHECK_FLOAT_EQ = "float-exact-compare"
CHECK_DISCARD = "discarded-status"

# Suppression markers. NONDET_OK covers the three determinism rules;
# STATUS_IGNORED covers the error-discipline rule (and doubles as the macro
# that casts the dropped value to void).
NONDET_OK_RE = re.compile(r"NEURO_NONDET_OK\s*\(")
STATUS_IGNORED_RE = re.compile(r"NEURO_STATUS_IGNORED\s*\(")

# Files where wall-clock reads are the *product*, not a hazard: the tracer
# and metrics (src/obs/), the sanctioned timing primitives, and the seeded
# RNG wrapper every stochastic component must draw from. NEURO_BITEXACT
# regions override this list.
NONDET_ALLOWLIST_PREFIXES = ("src/obs/",)
NONDET_ALLOWLIST_FILES = {
    "src/base/stopwatch.h",
    "src/base/deadline.h",
    "src/base/rng.h",
    "src/base/rng.cpp",
}

NONDET_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:.>])s?rand\s*\("), "C rand()/srand()"),
    (re.compile(r"(?<![\w:.>])time\s*\("), "time()"),
    (re.compile(r"(?<![\w:.>])clock\s*\("), "clock()"),
    (re.compile(r"\b[A-Za-z_]\w*\s*::\s*now\s*\("), "clock ::now() read"),
]

UNORDERED_TYPE_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\b")
WORD_RE = re.compile(r"[A-Za-z_]\w*")
BITEXACT_RE = re.compile(r"\bNEURO_BITEXACT\b")

# A floating-point literal: 1.0, .5, 3., 1e-9, 2.5e3f — but not the "1.5" in
# "v1.5" or a member access like "a.b".
FP_LITERAL_RE = re.compile(
    r"(?<![\w.])(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fFlL]?(?![\w.])"
    r"|(?<![\w.])\d+[eE][+-]?\d+[fFlL]?(?![\w.])"
)
EQ_NEQ_RE = re.compile(r"(?<![=!<>+\-*/%&|^])(==|!=)(?!=)")

# Function/method declarations returning Status or Outcome<T>; group(1) is
# the function name. Used by the textual discarded-status rule.
STATUS_FN_RE = re.compile(
    r"\b(?:base\s*::\s*)?(?:Status|Outcome\s*<[^;{}()]{0,120}>)\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\("
)
# A discarding statement's prefix may only be an object/namespace chain
# ("budget.", "session->", "base::"), never a keyword, declaration, or
# assignment context.
CHAIN_PREFIX_RE = re.compile(r"^\s*(?:[A-Za-z_]\w*\s*(?:::|\.|->)\s*)*$")

# Loop-body classifiers for the unordered-iteration rule: what makes a
# nondeterministic visit order *observable*.
BODY_ACCUM_RE = re.compile(r"[-+*/]=(?!=)|\bstd\s*::\s*(?:max|min)\s*\(")
BODY_COMM_RE = re.compile(
    r"\.\s*(?:send|recv|isend|irecv|barrier|broadcast|allreduce_\w+|"
    r"allgatherv|allgather_parts)\s*(?:<[^;>]*>)?\s*\("
)
BODY_EXPORT_RE = re.compile(r"<<|\bpush_back\s*\(|\bemplace_back\s*\(")


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str
    line: int
    check: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Returns same-length text with comments/char/string literals blanked.

    Newlines are preserved so offsets and line numbers survive; everything
    else inside a literal or comment becomes a space.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def suppressed_lines(original: str) -> dict[str, set[int]]:
    """Maps marker family -> line numbers carrying that suppression."""
    nondet: set[int] = set()
    status: set[int] = set()
    for idx, line in enumerate(original.splitlines(), start=1):
        if NONDET_OK_RE.search(line):
            nondet.add(idx)
        if STATUS_IGNORED_RE.search(line):
            status.add(idx)
    return {"nondet": nondet, "status": status}


def apply_suppressions(findings: list[Finding], markers: dict[str, set[int]]) -> list[Finding]:
    def family(check: str) -> set[int]:
        return markers["status"] if check == CHECK_DISCARD else markers["nondet"]

    return [
        f
        for f in findings
        if f.line not in family(f.check) and (f.line - 1) not in family(f.check)
    ]


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def match_balanced(text: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    """Index just past the bracket matching text[open_pos]; -1 if unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def bitexact_regions(stripped: str) -> list[tuple[int, int]]:
    """Offset ranges of function bodies marked NEURO_BITEXACT.

    The macro expands to nothing, so both engines locate it textually: each
    marker claims the next top-level `{...}` body that follows it.
    """
    regions: list[tuple[int, int]] = []
    for m in BITEXACT_RE.finditer(stripped):
        open_brace = stripped.find("{", m.end())
        if open_brace < 0:
            continue
        # Skip over parameter lists / ctor-inits between marker and body.
        i = m.end()
        while i < open_brace:
            if stripped[i] == "(":
                closed = match_balanced(stripped, i, "(", ")")
                if closed < 0:
                    break
                i = closed
                open_brace = stripped.find("{", i)
                if open_brace < 0:
                    break
            else:
                i += 1
        if open_brace is None or open_brace < 0:
            continue
        close = match_balanced(stripped, open_brace, "{", "}")
        if close < 0:
            continue
        regions.append((open_brace, close))
    return regions


def in_regions(pos: int, regions: list[tuple[int, int]]) -> bool:
    return any(start <= pos < end for start, end in regions)


def bitexact_line_ranges(stripped: str) -> list[tuple[int, int]]:
    return [
        (line_of(stripped, start), line_of(stripped, end - 1))
        for start, end in bitexact_regions(stripped)
    ]


def line_in_ranges(line: int, ranges: list[tuple[int, int]]) -> bool:
    return any(lo <= line <= hi for lo, hi in ranges)


def harvest_status_functions(stripped: str) -> set[str]:
    """Names of functions/methods declared to return Status or Outcome<T>."""
    names = set()
    for m in STATUS_FN_RE.finditer(stripped):
        name = m.group(1)
        if name not in ("operator", "if", "while", "for", "return", "switch"):
            names.add(name)
    return names


# --------------------------------------------------------------------------
# Shared line-based rules (identical in both engines by construction)
# --------------------------------------------------------------------------


def scan_nondet_sources(
    stripped: str, rel: str, strict_ranges: list[tuple[int, int]]
) -> list[Finding]:
    allowlisted = rel.startswith(NONDET_ALLOWLIST_PREFIXES) or rel in NONDET_ALLOWLIST_FILES
    findings: list[Finding] = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if line.lstrip().startswith("#"):
            continue  # includes / macros, not executed code
        strict = line_in_ranges(lineno, strict_ranges)
        if allowlisted and not strict:
            continue
        for pattern, what in NONDET_PATTERNS:
            if pattern.search(line):
                where = (
                    "inside a NEURO_BITEXACT function" if strict else "on library code"
                )
                findings.append(
                    Finding(
                        rel,
                        lineno,
                        CHECK_NONDET,
                        f"{what} {where}: nondeterminism sources break "
                        "bit-identical replay; route timing through "
                        "base/deadline.h or obs/, randomness through "
                        "base/rng.h, or suppress with // NEURO_NONDET_OK(reason)",
                    )
                )
                break
    return findings


def scan_float_exact_compares(stripped: str, rel: str) -> list[Finding]:
    findings: list[Finding] = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if line.lstrip().startswith("#"):
            continue
        for m in EQ_NEQ_RE.finditer(line):
            # `bool operator==(...)` declares the comparison, it does not
            # perform one.
            if re.search(r"\boperator\s*$", line[: m.start()]):
                continue
            left = re.split(r"[(){};,?:]|&&|\|\|", line[: m.start()])[-1]
            right = re.split(r"[(){};,?:]|&&|\|\|", line[m.end() :])[0]
            if FP_LITERAL_RE.search(left) or FP_LITERAL_RE.search(right):
                findings.append(
                    Finding(
                        rel,
                        lineno,
                        CHECK_FLOAT_EQ,
                        f"floating-point `{m.group(1)}` against a literal: "
                        "exact FP equality is only meaningful for "
                        "sentinel/exact-replay checks — use a tolerance, or "
                        "suppress with // NEURO_NONDET_OK(reason)",
                    )
                )
                break
    return findings


def classify_loop_body(body: str) -> str | None:
    """Why iterating an unordered container here is observable, or None."""
    if BODY_ACCUM_RE.search(body):
        return "accumulates floating point"
    if BODY_COMM_RE.search(body):
        return "emits communicator traffic"
    if BODY_EXPORT_RE.search(body):
        return "writes exported output"
    return None


def unordered_finding(rel: str, lineno: int, reason: str | None, strict: bool) -> Finding:
    if strict:
        what = "iteration over an unordered container inside a NEURO_BITEXACT function"
    else:
        what = f"iteration over an unordered container whose body {reason}"
    return Finding(
        rel,
        lineno,
        CHECK_UNORDERED,
        f"{what}: visit order depends on the hash-table layout of the run — "
        "iterate a sorted container (std::map / sorted vector) or sort keys "
        "first",
    )


# --------------------------------------------------------------------------
# Textual engine
# --------------------------------------------------------------------------


class TextEngine:
    """Regex/tokenizer engine needing no toolchain.

    No preprocessing and no type information, so it harvests per-file
    declarations of unordered containers and Status/Outcome-returning
    functions and over-approximates where cheap. Precision is validated by
    --self-test fixtures and by the zero-findings requirement on the real
    tree.
    """

    name = "text"

    def analyze_file(
        self, path: pathlib.Path, rel: str, status_names: set[str] | None = None
    ) -> list[Finding]:
        original = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_comments_and_strings(original)
        markers = suppressed_lines(original)
        strict_ranges = bitexact_line_ranges(stripped)
        strict_regions = bitexact_regions(stripped)
        names = status_names if status_names is not None else harvest_status_functions(stripped)

        findings: list[Finding] = []
        findings.extend(scan_nondet_sources(stripped, rel, strict_ranges))
        findings.extend(scan_float_exact_compares(stripped, rel))
        findings.extend(self._scan_unordered_iteration(stripped, rel, strict_regions))
        findings.extend(self._scan_discarded_status(stripped, rel, names))
        findings.sort(key=lambda f: (f.line, f.check))
        return apply_suppressions(findings, markers)

    # -- rule: unordered-iteration -----------------------------------------

    def _unordered_names(self, stripped: str) -> set[str]:
        names: set[str] = set()
        for m in UNORDERED_TYPE_RE.finditer(stripped):
            open_angle = stripped.find("<", m.end())
            if open_angle < 0 or stripped[m.end() : open_angle].strip():
                continue
            close = match_balanced(stripped, open_angle, "<", ">")
            if close < 0:
                continue
            nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)", stripped[close:])
            if nm:
                names.add(nm.group(1))
        return names

    def _scan_unordered_iteration(
        self, stripped: str, rel: str, strict_regions: list[tuple[int, int]]
    ) -> list[Finding]:
        names = self._unordered_names(stripped)
        findings: list[Finding] = []
        for m in re.finditer(r"\bfor\s*\(", stripped):
            open_paren = stripped.find("(", m.start())
            close_paren = match_balanced(stripped, open_paren, "(", ")")
            if close_paren < 0:
                continue
            header = stripped[open_paren + 1 : close_paren - 1]
            if not self._header_is_unordered(header, names):
                continue
            body = self._loop_body(stripped, close_paren)
            strict = in_regions(m.start(), strict_regions)
            reason = classify_loop_body(body)
            if strict or reason is not None:
                findings.append(
                    unordered_finding(rel, line_of(stripped, m.start()), reason, strict)
                )
        return findings

    @staticmethod
    def _header_is_unordered(header: str, names: set[str]) -> bool:
        # Range-for: `for (auto& kv : <range>)` — examine the range expr.
        colon = None
        depth = 0
        for i, ch in enumerate(header):
            if ch in "([{<":
                depth += 1
            elif ch in ")]}>":
                depth = max(0, depth - 1)
            elif ch == ":" and depth == 0:
                if i + 1 < len(header) and header[i + 1] == ":":
                    continue
                if i > 0 and header[i - 1] == ":":
                    continue
                colon = i
                break
        if colon is not None:
            range_expr = header[colon + 1 :]
            if UNORDERED_TYPE_RE.search(range_expr):
                return True
            return any(w in names for w in WORD_RE.findall(range_expr))
        # Classic iterator loop: `for (auto it = m.begin(); ...)`.
        if ".begin" not in header and ".cbegin" not in header:
            return False
        return any(
            re.search(rf"\b{re.escape(n)}\s*\.\s*c?begin\s*\(", header) for n in names
        )

    @staticmethod
    def _loop_body(stripped: str, after_close_paren: int) -> str:
        i = after_close_paren
        n = len(stripped)
        while i < n and stripped[i] in " \t\n":
            i += 1
        if i < n and stripped[i] == "{":
            end = match_balanced(stripped, i, "{", "}")
            return stripped[i:end] if end > 0 else stripped[i:]
        end = stripped.find(";", i)
        return stripped[i : end + 1] if end >= 0 else stripped[i:]

    # -- rule: discarded-status --------------------------------------------

    def _scan_discarded_status(
        self, stripped: str, rel: str, names: set[str]
    ) -> list[Finding]:
        if not names:
            return []
        findings: list[Finding] = []
        pattern = re.compile(
            r"\b(" + "|".join(re.escape(n) for n in sorted(names)) + r")\s*\("
        )
        for m in pattern.finditer(stripped):
            open_paren = stripped.find("(", m.end(1))
            close = match_balanced(stripped, open_paren, "(", ")")
            if close < 0:
                continue
            # The whole statement must be the bare call: the prefix back to
            # the previous ; { or } may only be an object/namespace chain,
            # and the call must be immediately followed by `;`.
            stmt_start = max(
                stripped.rfind(";", 0, m.start()),
                stripped.rfind("{", 0, m.start()),
                stripped.rfind("}", 0, m.start()),
            )
            prefix = stripped[stmt_start + 1 : m.start()]
            if not CHAIN_PREFIX_RE.match(prefix):
                continue
            tail = stripped[close:].lstrip()
            if not tail.startswith(";"):
                continue
            findings.append(
                Finding(
                    rel,
                    line_of(stripped, m.start()),
                    CHECK_DISCARD,
                    f"return value of {m.group(1)}() (base::Status/Outcome) is "
                    "discarded — a swallowed failure; check it, or discard "
                    "explicitly via NEURO_STATUS_IGNORED(expr, reason)",
                )
            )
        return findings


# --------------------------------------------------------------------------
# libclang engine
# --------------------------------------------------------------------------


class ClangEngine:
    """AST-accurate variant of the same four checks via clang.cindex.

    The two line-based rules (nondet-source, float-exact-compare) reuse the
    shared textual scanners verbatim, so both engines agree on them by
    construction. The structural rules gain type accuracy: range-for
    statements are classified by the *type* of the range (catching members
    declared in another file), and discarded results by the call's return
    type rather than a harvested name list.
    """

    name = "clang"

    def __init__(self) -> None:
        from clang import cindex  # noqa: PLC0415  (probed by engine selection)

        self.cindex = cindex
        self.index = cindex.Index.create()

    def analyze_file(
        self,
        path: pathlib.Path,
        rel: str,
        status_names: set[str] | None = None,
        args: list[str] | None = None,
    ) -> list[Finding]:
        original = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_comments_and_strings(original)
        markers = suppressed_lines(original)
        strict_ranges = bitexact_line_ranges(stripped)

        findings: list[Finding] = []
        findings.extend(scan_nondet_sources(stripped, rel, strict_ranges))
        findings.extend(scan_float_exact_compares(stripped, rel))

        # `-x c++` so bare headers parse as C++, not C.
        tu = self.index.parse(str(path), args=["-x", "c++"] + (args or ["-std=c++20"]))
        kinds = self.cindex.CursorKind
        for cursor in tu.cursor.walk_preorder():
            if cursor.location.file is None or cursor.location.file.name != str(path):
                continue
            if cursor.kind == kinds.CXX_FOR_RANGE_STMT:
                findings.extend(self._check_range_for(cursor, rel, strict_ranges))
            elif cursor.kind == kinds.COMPOUND_STMT:
                findings.extend(self._check_discards(cursor, rel))
        findings.sort(key=lambda f: (f.line, f.check))
        return apply_suppressions(findings, markers)

    def _node_text(self, node) -> str:
        return " ".join(t.spelling for t in node.get_tokens())

    def _check_range_for(self, cursor, rel: str, strict_ranges) -> list[Finding]:
        children = list(cursor.get_children())
        if not children:
            return []
        body = children[-1]
        unordered = False
        for child in children[:-1]:
            for node in child.walk_preorder():
                spelling = node.type.spelling or ""
                if "unordered_map" in spelling or "unordered_set" in spelling:
                    unordered = True
                    break
            if unordered:
                break
        if not unordered:
            return []
        lineno = cursor.location.line
        strict = line_in_ranges(lineno, strict_ranges)
        reason = classify_loop_body(self._node_text(body))
        if strict or reason is not None:
            return [unordered_finding(rel, lineno, reason, strict)]
        return []

    def _check_discards(self, compound, rel: str) -> list[Finding]:
        kinds = self.cindex.CursorKind
        findings: list[Finding] = []
        for child in compound.get_children():
            node = child
            # Clang sometimes wraps unused expression statements.
            while node.kind == kinds.UNEXPOSED_EXPR:
                inner = list(node.get_children())
                if len(inner) != 1:
                    break
                node = inner[0]
            if node.kind != kinds.CALL_EXPR:
                continue
            result = node.type.spelling or ""
            if re.search(r"\bStatus\b", result) or "Outcome<" in result:
                name = node.spelling or "<call>"
                findings.append(
                    Finding(
                        rel,
                        node.location.line,
                        CHECK_DISCARD,
                        f"return value of {name}() ({result}) is discarded — a "
                        "swallowed failure; check it, or discard explicitly "
                        "via NEURO_STATUS_IGNORED(expr, reason)",
                    )
                )
        return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def make_engine(requested: str):
    if requested in ("auto", "clang"):
        try:
            return ClangEngine()
        except ImportError:
            if requested == "clang":
                print("check_numerics: clang.cindex not importable; skipping", file=sys.stderr)
                sys.exit(77)
    return TextEngine()


def iter_tree_files(root: pathlib.Path):
    base = root / "src"
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        yield path, path.relative_to(root).as_posix()


def compdb_args(root: pathlib.Path, compdb: pathlib.Path) -> dict[str, list[str]]:
    """Maps absolute file path -> compile args (include dirs / std only)."""
    entries = json.loads(compdb.read_text(encoding="utf-8"))
    result: dict[str, list[str]] = {}
    keep = ("-I", "-D", "-std=", "-isystem")
    for entry in entries:
        file = str((pathlib.Path(entry["directory"]) / entry["file"]).resolve())
        raw = entry.get("arguments") or entry.get("command", "").split()
        args = [a for a in raw if a.startswith(keep)]
        result[file] = args
    return result


def harvest_tree_status_functions(root: pathlib.Path) -> set[str]:
    names: set[str] = set()
    for path, _rel in iter_tree_files(root):
        names |= harvest_status_functions(
            strip_comments_and_strings(path.read_text(encoding="utf-8", errors="replace"))
        )
    return names


EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([\w-]+)\s*@\s*(\d+)")
EXPECT_CLEAN_RE = re.compile(r"//\s*EXPECT-CLEAN\b")


def run_self_test(engine, root: pathlib.Path) -> int:
    fixtures_dir = root / "tests" / "numerics_lint"
    failures = 0
    fixture_files = sorted(fixtures_dir.glob("*.cpp"))
    if not fixture_files:
        print(f"check_numerics: no fixtures in {fixtures_dir}", file=sys.stderr)
        return 1
    for path in fixture_files:
        text = path.read_text(encoding="utf-8")
        expected = {(m.group(1), int(m.group(2))) for m in EXPECT_RE.finditer(text)}
        is_clean = EXPECT_CLEAN_RE.search(text) is not None
        if not expected and not is_clean:
            print(f"{path.name}: fixture has neither EXPECT: nor EXPECT-CLEAN")
            failures += 1
            continue
        if isinstance(engine, ClangEngine):
            got_findings = engine.analyze_file(
                path, path.name, args=["-std=c++20", f"-I{root / 'src'}"]
            )
        else:
            got_findings = engine.analyze_file(path, path.name)
        got = {(f.check, f.line) for f in got_findings}
        missed = expected - got
        extra = got - expected
        for check, line in sorted(missed):
            print(f"{path.name}: MISSED seeded bug [{check}] at line {line}")
            failures += 1
        for check, line in sorted(extra):
            print(f"{path.name}: SPURIOUS finding [{check}] at line {line}")
            failures += 1
        if not missed and not extra:
            label = "clean" if is_clean else f"{len(expected)} seeded"
            print(f"check_numerics self-test OK: {path.name} ({label})")
    if failures:
        print(f"check_numerics self-test: {failures} mismatch(es)", file=sys.stderr)
        return 1
    print(
        f"check_numerics self-test: OK ({len(fixture_files)} fixtures, engine={engine.name})"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path, default=pathlib.Path.cwd(),
                        help="repository root to scan (default: cwd)")
    parser.add_argument("--compdb", type=pathlib.Path, default=None,
                        help="compile_commands.json for the clang engine")
    parser.add_argument("--engine", choices=("auto", "text", "clang"), default="auto")
    parser.add_argument("--self-test", action="store_true",
                        help="validate against tests/numerics_lint fixtures")
    args = parser.parse_args()

    engine = make_engine(args.engine)

    if args.self_test:
        return run_self_test(engine, args.root)

    per_file_args: dict[str, list[str]] = {}
    if args.compdb is not None and isinstance(engine, ClangEngine):
        if args.compdb.is_file():
            per_file_args = compdb_args(args.root, args.compdb)
        else:
            print(f"check_numerics: {args.compdb} missing; using default clang args",
                  file=sys.stderr)

    status_names = harvest_tree_status_functions(args.root)
    findings: list[Finding] = []
    scanned = 0
    for path, rel in iter_tree_files(args.root):
        scanned += 1
        if isinstance(engine, ClangEngine):
            extra = per_file_args.get(str(path.resolve()))
            findings.extend(
                engine.analyze_file(
                    path,
                    rel,
                    status_names,
                    (extra or []) + ["-std=c++20", f"-I{args.root / 'src'}"],
                )
            )
        else:
            findings.extend(engine.analyze_file(path, rel, status_names))

    for f in findings:
        print(f.render())
    if findings:
        print(
            f"check_numerics: {len(findings)} finding(s) in {scanned} files "
            f"(engine={engine.name}); suppress determinism findings with "
            "// NEURO_NONDET_OK(reason), status discards with "
            "NEURO_STATUS_IGNORED(expr, reason)",
            file=sys.stderr,
        )
        return 1
    print(f"check_numerics: OK ({scanned} files, engine={engine.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

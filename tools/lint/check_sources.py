#!/usr/bin/env python3
"""Repo-convention linter for the neurofem tree.

Checks (see docs/static_analysis.md):
  * every header uses `#pragma once` (no include guards);
  * no `std::cout` / `printf` / C `rand()` in library code under src/ —
    diagnostics go through base/check.h, randomness through base/rng.h, and
    report printers take a std::ostream&;
  * no `using namespace std;` anywhere;
  * include order: a .cpp's first include is its own header; within each
    blank-line-separated include block, <system> and "project" includes are
    each sorted and not mixed;
  * every file under src/ declares the `neuro` namespace, and namespace
    closing braces carry a `// namespace ...` comment;
  * no raw `std::vector<int>` index members in src/fem/ and src/solver/
    headers — index bookkeeping there uses the strong ID types of
    base/strong_id.h; only the grandfathered CSR wire format and per-rank
    count tables in VECTOR_INT_MEMBER_ALLOWLIST may stay flat ints;
  * no raw std::mutex / std::lock_guard / std::unique_lock /
    std::condition_variable in src/ — shared state is synchronized through
    the annotated base::Mutex / base::MutexLock / base::CondVar family
    (base/mutex.h) so Clang's thread-safety analysis can prove the locking
    discipline (docs/static_analysis.md, "Capability annotations"); the only
    grandfathered user of the raw primitives is base/mutex.h itself
    (RAW_SYNC_ALLOWLIST, drift-checked);
  * no std::deque / std::queue / std::priority_queue in src/service/ — the
    service layer's only queue is service::BoundedQueue, whose capacity is
    fixed at construction and whose overflow is a typed kResourceExhausted
    rejection (docs/service.md); an unbounded standard container would turn
    overload into silent memory growth instead of backpressure
    (UNBOUNDED_QUEUE_ALLOWLIST is empty by design, drift-checked);
  * no raw base/stopwatch.h timing in src/core/ and src/fem/ — durations
    reported from the pipeline and the FEM layer flow through obs::Span
    (obs::timed_span) so that every number in a report is also a span in an
    exported trace and the two can never disagree (docs/observability.md);
    timing that genuinely must stay out of traces goes in STOPWATCH_ALLOWLIST;
  * no new NEURO_CHECK / NEURO_CHECK_MSG in src/core/ and src/solver/ —
    recoverable failures (convergence, deadlines, communication, bad input
    data) are reported as base::Status / base::Outcome (see
    docs/robustness.md); NEURO_CHECK is reserved for genuine invariant
    corruption, and the existing invariant checks are grandfathered in
    NEURO_CHECK_BUDGET;
  * explicit vector intrinsics — the <immintrin.h>/<arm_neon.h> family of
    headers and _mm*/__m128/__m256/NEON tokens — appear only under
    src/solver/simd/; every other layer reaches vector code through the
    runtime-dispatched block kernels (solver/simd/block_kernels.h), which
    keeps the NEURO_BITEXACT scalar fallback the single switch that removes
    all vector code from the numeric path (docs/perf.md, "SIMD dispatch");
  * no trailing whitespace, no tabs in C++ sources, files end with a newline;
  * the grandfather lists themselves may not drift: a
    VECTOR_INT_MEMBER_ALLOWLIST entry whose file or member no longer exists,
    or a NEURO_CHECK_BUDGET entry whose file is gone or whose budget exceeds
    the file's actual NEURO_CHECK count, is a lint error — stale slack in an
    allowlist is how new violations creep in unreviewed.  The SIMD rule
    drift-checks in the other direction: if no file under src/solver/simd/
    uses an intrinsic any more, the confinement rule guards a directory the
    kernels have left, and the stale rule is the violation.

Exits non-zero listing every violation. Run directly:

    python3 tools/lint/check_sources.py [repo-root]

or via the build: `ctest -R lint` / `cmake --build build --target lint`.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CPP_DIRS = ("src", "tests", "bench", "examples", "tools")
LIBRARY_DIR = "src"
CPP_SUFFIXES = {".h", ".cpp"}

# Library code must route output/randomness through the base/ primitives.
BANNED_IN_SRC = [
    (re.compile(r"\bstd::cout\b"), "std::cout (pass a std::ostream& instead)"),
    (re.compile(r"\bstd::cerr\b"), "std::cerr (throw via base/check.h instead)"),
    (re.compile(r"\b(?:std::)?f?printf\s*\("), "printf (pass a std::ostream& instead)"),
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "C rand() (use base/rng.h)"),
]
BANNED_EVERYWHERE = [
    (re.compile(r"\busing\s+namespace\s+std\s*;"), "using namespace std"),
]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^>"]+)[>"]')

# Macro-only headers define no symbols, so the namespace-neuro rule does not
# apply to them.
MACRO_ONLY_HEADERS = {
    "src/base/numerics_annotations.h",
    "src/base/thread_annotations.h",
}

# Locking discipline (docs/static_analysis.md, "Capability annotations"):
# library code synchronizes through the annotated base::Mutex family so that
# the clang-static CI job's -Werror=thread-safety build proves every guarded
# access. A raw std primitive is invisible to that analysis — the compiler
# cannot connect it to any NEURO_GUARDED_BY contract — so new uses in src/
# are banned. base/mutex.h (the wrapper itself) is the one grandfathered
# user; the entry is drift-checked like every other allowlist.
RAW_SYNC_RE = re.compile(
    r"\bstd::(?:recursive_|shared_|timed_)?mutex\b"
    r"|\bstd::condition_variable(?:_any)?\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b")
RAW_SYNC_ALLOWLIST = {"src/base/mutex.h"}

# Index bookkeeping in the FEM and solver layers must use the strong ID types
# of base/strong_id.h (NodeId, DofId, GlobalRow, ...) so that index-space
# mix-ups fail to compile (see docs/static_analysis.md, "Index spaces and
# strong IDs"). New raw std::vector<int> *members* in headers under these
# directories are banned; the allowlist grandfathers the CSR wire format
# (row_ptr/cols position streams shipped flat across ranks by design) and
# per-rank count tables, which hold counts, not indices.
TYPED_INDEX_HEADER_DIRS = ("src/fem/", "src/solver/")
VECTOR_INT_MEMBER_RE = re.compile(r"^\s*(?:const\s+)?std::vector<int>\s+(\w+)\s*[;={]")
VECTOR_INT_MEMBER_ALLOWLIST = {
    # CSR wire format: positions into the value stream, not row/col indices.
    ("src/solver/dist_matrix.h", "row_ptr_"),
    ("src/solver/dist_matrix.h", "global_cols_"),
    ("src/solver/dist_matrix.h", "local_cols_"),
    ("src/solver/dist_matrix.h", "local_indices"),  # Exchange plan entries
    ("src/solver/ilu_kernels.h", "row_ptr_"),
    ("src/solver/ilu_kernels.h", "cols_"),
    ("src/solver/ilu_kernels.h", "diag_pos_"),
    ("src/solver/preconditioner.h", "row_ptr_"),
    ("src/solver/preconditioner.h", "cols_"),
    ("src/solver/preconditioner.h", "diag_pos_"),
    # Halo-exchange plans: offsets into packed send/recv buffers.
    ("src/solver/additive_schwarz.h", "local_indices"),
    ("src/solver/additive_schwarz.h", "ext_positions"),
    ("src/solver/additive_schwarz.h", "owned_ext_positions_"),
    # Per-rank counts for the scaling report (values, not indices).
    ("src/fem/deformation_solver.h", "nodes_per_rank"),
    ("src/fem/deformation_solver.h", "fixed_dofs_per_rank"),
}

# Backpressure discipline (docs/service.md): every queue in the service layer
# is a service::BoundedQueue — capacity fixed at construction, overflow
# surfaced to the caller as a typed kResourceExhausted rejection. The
# unbounded standard containers would absorb overload as memory growth the
# admission controller never sees, so they are banned under src/service/.
# The allowlist is empty by design; an entry is the review prompt to argue
# why a particular queue genuinely may grow without bound.
UNBOUNDED_QUEUE_DIRS = ("src/service/",)
UNBOUNDED_QUEUE_RE = re.compile(r"\bstd::(?:deque|queue|priority_queue)\b")
UNBOUNDED_QUEUE_INCLUDES = {"deque", "queue"}
UNBOUNDED_QUEUE_ALLOWLIST: set[str] = set()

# SIMD confinement (docs/perf.md, "SIMD dispatch"): explicit vector code is a
# portability and bit-exactness liability, so it lives in exactly one place —
# src/solver/simd/ — behind block-kernel entry points that runtime-dispatch
# between scalar and vector bodies. A stray intrinsic anywhere else would
# escape both the dispatch switch and the NEURO_BITEXACT scalar fallback,
# silently re-coupling numeric results to the build host's ISA. Both the
# intrinsics *headers* (caught at the include line, before any token is used)
# and the intrinsic *tokens* themselves are banned outside that directory.
SIMD_DIR = "src/solver/simd/"
SIMD_INCLUDE_HEADERS = {
    "immintrin.h", "x86intrin.h",                      # AVX/AVX2/AVX-512 umbrella
    "emmintrin.h", "xmmintrin.h", "pmmintrin.h",       # SSE/SSE2/SSE3
    "tmmintrin.h", "smmintrin.h", "nmmintrin.h",       # SSSE3/SSE4.1/SSE4.2
    "arm_neon.h", "arm_sve.h",                         # ARM
}
SIMD_TOKEN_RE = re.compile(
    r"\b_mm(?:256|512)?_\w+\b"                 # SSE/AVX intrinsic calls
    r"|\b__m(?:64|128|256|512)[di]?\b"         # x86 vector register types
    r"|\bfloat(?:16|32|64)x\d+(?:x\d+)?_t\b"   # NEON vector types
    r"|\bv[a-z0-9]\w*q?_(?:n_|lane_)?f(?:16|32|64)\b")  # NEON f* intrinsics

# Timing discipline (docs/observability.md): the pipeline (src/core/) and the
# FEM layer (src/fem/) report stage durations that are *views over trace
# spans* — StageTiming, DegradationReport and the wall_*_s fields all read
# obs::Span/obs::timed_span, so a Fig. 6 table and an exported Chrome trace
# are the same measurement. A raw base/stopwatch.h Stopwatch there would be a
# second clock that can silently drift from the trace. The allowlist is empty
# today; adding to it is the review prompt to argue the timing really must
# not appear in traces.
STOPWATCH_DIRS = ("src/core/", "src/fem/")
STOPWATCH_TOKEN_RE = re.compile(r"\bStopwatch\b")
STOPWATCH_ALLOWLIST: set[str] = set()

# Failure-taxonomy discipline (docs/robustness.md): inside the intraoperative
# pipeline (src/core/) and the solver (src/solver/), a failure that can happen
# in a correct program — a solve that stagnates, a deadline that expires, a
# peer that drops a message, data that arrives non-finite — must surface as a
# typed base::Status / base::Outcome so the degradation ladder can act on it.
# NEURO_CHECK aborts the computation and is reserved for invariant corruption
# (indexing bugs, broken exchange plans). The budget below grandfathers the
# audited invariant checks; adding a NEURO_CHECK to these directories trips
# the lint until the budget is raised — which is the code review prompt to
# argue the new check really is an invariant and not a recoverable failure.
NEURO_CHECK_DIRS = ("src/core/", "src/solver/")
NEURO_CHECK_RE = re.compile(r"\bNEURO_CHECK(?:_MSG)?\s*\(")
NEURO_CHECK_BUDGET = {
    "src/core/pipeline.cpp": 2,        # unknown stage name; empty brain mesh
    "src/core/landmarks.cpp": 1,       # < 4 landmarks cannot define a frame
    "src/solver/dist_vector.h": 3,     # row-range ownership invariants
    "src/solver/preconditioner.cpp": 8,  # size invariants + factorization pivots
    "src/solver/dist_matrix.cpp": 6,   # exchange-plan lifecycle invariants
    "src/solver/ilu_kernels.cpp": 3,   # CSR structure + pivot invariants
    "src/solver/additive_schwarz.cpp": 5,  # halo-plan size + ghost-index invariants
}


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line structure
    so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def check_file(root: Path, path: Path) -> list[str]:
    rel = path.relative_to(root).as_posix()
    raw = path.read_text(encoding="utf-8")
    errors: list[str] = []

    def err(line: int, message: str) -> None:
        errors.append(f"{rel}:{line}: {message}")

    # -- whitespace hygiene ---------------------------------------------------
    if raw and not raw.endswith("\n"):
        err(raw.count("\n") + 1, "file does not end with a newline")
    for lineno, line in enumerate(raw.splitlines(), 1):
        if line.rstrip("\n") != line.rstrip():
            err(lineno, "trailing whitespace")
        if "\t" in line:
            err(lineno, "tab character (use spaces)")

    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    raw_lines = raw.splitlines()

    # -- pragma once ----------------------------------------------------------
    if path.suffix == ".h":
        if not re.search(r"^\s*#\s*pragma\s+once\s*$", code, re.MULTILINE):
            err(1, "header is missing #pragma once")

    # -- banned constructs ----------------------------------------------------
    in_library = rel.startswith(LIBRARY_DIR + "/")
    banned = BANNED_EVERYWHERE + (BANNED_IN_SRC if in_library else [])
    for lineno, line in enumerate(code_lines, 1):
        for pattern, what in banned:
            if pattern.search(line):
                err(lineno, f"banned construct: {what}")

    # -- include order --------------------------------------------------------
    # Parse from raw lines: the comment/string stripper blanks the quoted
    # include target. Skip lines that are inside block comments by requiring
    # the stripped line to still start with '#'.
    includes = []  # (lineno, kind, target)
    for lineno, line in enumerate(raw_lines, 1):
        m = INCLUDE_RE.match(line)
        if m and code_lines[lineno - 1].lstrip().startswith("#"):
            includes.append((lineno, "system" if m.group(1) == "<" else "project", m.group(2)))

    if includes and path.suffix == ".cpp" and in_library:
        own = path.relative_to(root / LIBRARY_DIR).with_suffix(".h").as_posix()
        first = includes[0]
        if first[1] != "project" or first[2] != own:
            if (root / LIBRARY_DIR / own).exists():
                err(first[0], f'first include must be the file\'s own header "{own}"')

    # Group includes into blank-line-separated blocks; each block must be
    # internally sorted and must not mix <system> with "project" includes.
    block: list[tuple[int, str, str]] = []

    def flush_block() -> None:
        if len(block) < 2:
            block.clear()
            return
        kinds = {k for (_, k, _) in block}
        if len(kinds) > 1:
            err(block[0][0], 'include block mixes <system> and "project" includes')
        targets = [t for (_, _, t) in block]
        if targets != sorted(targets):
            err(block[0][0], f"includes not sorted within block: {', '.join(targets)}")
        block.clear()

    prev_lineno = None
    for inc in includes:
        lineno = inc[0]
        if prev_lineno is not None:
            between = code_lines[prev_lineno : lineno - 1]
            if any(not l.strip() for l in between):
                flush_block()
        # A .cpp's own first header is its own block.
        if block or not (path.suffix == ".cpp" and not includes.index(inc)):
            block.append(inc)
        prev_lineno = lineno
    flush_block()

    # -- annotated base::Mutex family over raw std synchronization ------------
    if in_library and rel not in RAW_SYNC_ALLOWLIST:
        for lineno, line in enumerate(code_lines, 1):
            m = RAW_SYNC_RE.search(line)
            if m:
                err(lineno,
                    f"raw {m.group(0)} — use the annotated base::Mutex / "
                    "base::MutexLock / base::CondVar family (base/mutex.h) so "
                    "the thread-safety analysis sees the lock "
                    "(docs/static_analysis.md)")

    # -- strong IDs over raw index members (fem/solver headers) ---------------
    if path.suffix == ".h" and rel.startswith(TYPED_INDEX_HEADER_DIRS):
        for lineno, line in enumerate(code_lines, 1):
            m = VECTOR_INT_MEMBER_RE.match(line)
            if m and (rel, m.group(1)) not in VECTOR_INT_MEMBER_ALLOWLIST:
                err(lineno,
                    f"raw std::vector<int> index member '{m.group(1)}' — use a "
                    "strong ID container from base/strong_id.h, or allowlist "
                    "genuine wire-format arrays in check_sources.py")

    # -- bounded queues only in the service layer -----------------------------
    if rel.startswith(UNBOUNDED_QUEUE_DIRS) and rel not in UNBOUNDED_QUEUE_ALLOWLIST:
        for lineno, _, target in includes:
            if target in UNBOUNDED_QUEUE_INCLUDES:
                err(lineno,
                    f"unbounded <{target}> in the service layer — queue through "
                    "service::BoundedQueue so overload surfaces as a typed "
                    "kResourceExhausted rejection, not memory growth "
                    "(docs/service.md)")
        for lineno, line in enumerate(code_lines, 1):
            m = UNBOUNDED_QUEUE_RE.search(line)
            if m:
                err(lineno,
                    f"unbounded {m.group(0)} in the service layer — queue "
                    "through service::BoundedQueue so overload surfaces as a "
                    "typed kResourceExhausted rejection, not memory growth "
                    "(docs/service.md)")

    # -- explicit vector intrinsics confined to src/solver/simd/ --------------
    if not rel.startswith(SIMD_DIR):
        for lineno, _, target in includes:
            if target in SIMD_INCLUDE_HEADERS:
                err(lineno,
                    f"intrinsics header <{target}> outside {SIMD_DIR} — vector "
                    "code goes through the runtime-dispatched block kernels "
                    "(solver/simd/block_kernels.h) so the scalar fallback stays "
                    "the single bit-exactness switch (docs/perf.md)")
        for lineno, line in enumerate(code_lines, 1):
            m = SIMD_TOKEN_RE.search(line)
            if m:
                err(lineno,
                    f"vector intrinsic '{m.group(0)}' outside {SIMD_DIR} — "
                    "vector code goes through the runtime-dispatched block "
                    "kernels (solver/simd/block_kernels.h) so the scalar "
                    "fallback stays the single bit-exactness switch "
                    "(docs/perf.md)")

    # -- no raw Stopwatch in core/fem (span-as-stopwatch discipline) ----------
    if rel.startswith(STOPWATCH_DIRS) and rel not in STOPWATCH_ALLOWLIST:
        for lineno, _, target in includes:
            if target == "base/stopwatch.h":
                err(lineno,
                    "raw base/stopwatch.h in core/fem — time through "
                    "obs::timed_span so the duration is also a trace span "
                    "(docs/observability.md), or add the file to "
                    "STOPWATCH_ALLOWLIST in check_sources.py")
        for lineno, line in enumerate(code_lines, 1):
            if STOPWATCH_TOKEN_RE.search(line):
                err(lineno,
                    "raw Stopwatch in core/fem — time through obs::timed_span "
                    "so the duration is also a trace span "
                    "(docs/observability.md), or add the file to "
                    "STOPWATCH_ALLOWLIST in check_sources.py")

    # -- NEURO_CHECK budget (core/solver failure taxonomy) --------------------
    if rel.startswith(NEURO_CHECK_DIRS):
        hits = [lineno for lineno, line in enumerate(code_lines, 1)
                if NEURO_CHECK_RE.search(line)]
        budget = NEURO_CHECK_BUDGET.get(rel, 0)
        if len(hits) > budget:
            err(hits[-1],
                f"{len(hits)} NEURO_CHECK uses exceed this file's budget of "
                f"{budget} — recoverable failures (convergence, deadline, "
                "comm, bad data) must return base::Status/Outcome (see "
                "docs/robustness.md); raise NEURO_CHECK_BUDGET in "
                "check_sources.py only for genuine invariant checks")

    # -- namespaces -----------------------------------------------------------
    if in_library and rel not in MACRO_ONLY_HEADERS:
        if not re.search(r"^\s*namespace\s+neuro\b", code, re.MULTILINE):
            err(1, "library file does not declare namespace neuro")

    # Track brace nesting to find the braces that close namespaces; those must
    # carry the conventional `}  // namespace …` comment on the raw line.
    stack: list[tuple[bool, int]] = []  # (is_namespace, open_lineno)
    pending_namespace = False
    for lineno, line in enumerate(code_lines, 1):
        for tok in re.findall(r"using\s+namespace\b|namespace\b|[{};]", line):
            if tok.startswith("using"):
                continue  # a using-directive opens no scope
            if tok == ";":
                pending_namespace = False  # namespace alias / using-directive
            elif tok == "namespace":
                pending_namespace = True
            elif tok == "{":
                stack.append((pending_namespace, lineno))
                pending_namespace = False
            else:  # "}"
                pending_namespace = False
                if not stack:
                    continue  # unbalanced (macro trickery); not this rule's job
                was_namespace, _ = stack.pop()
                if was_namespace and "namespace" not in raw_lines[lineno - 1]:
                    err(lineno, "namespace-closing brace must carry a '// namespace …' comment")

    return errors


def check_allowlist_drift(root: Path) -> list[str]:
    """The grandfather lists are ratchets, not suggestions: every entry must
    still correspond to code that exists, and every budget must be exactly the
    file's current NEURO_CHECK count. A deleted file, a renamed member, or a
    refactor that removed a check leaves slack under which a *new* violation
    could land without tripping the lint — so the stale entry itself is the
    violation, and the fix is to shrink the list, never to grow into it."""
    errors: list[str] = []

    by_file: dict[str, set[str]] = {}
    for rel, member in VECTOR_INT_MEMBER_ALLOWLIST:
        by_file.setdefault(rel, set()).add(member)
    for rel in sorted(by_file):
        path = root / rel
        if not path.is_file():
            errors.append(
                f"check_sources.py: stale VECTOR_INT_MEMBER_ALLOWLIST entries for "
                f"deleted file {rel} — remove them")
            continue
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        present = {m.group(1) for line in code.splitlines()
                   if (m := VECTOR_INT_MEMBER_RE.match(line))}
        for member in sorted(by_file[rel] - present):
            errors.append(
                f"check_sources.py: stale VECTOR_INT_MEMBER_ALLOWLIST entry "
                f"('{rel}', '{member}') — no such std::vector<int> member; "
                "remove the entry")

    for rel in sorted(RAW_SYNC_ALLOWLIST):
        path = root / rel
        if not path.is_file():
            errors.append(
                f"check_sources.py: stale RAW_SYNC_ALLOWLIST entry for deleted "
                f"file {rel} — remove it")
            continue
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        if not any(RAW_SYNC_RE.search(line) for line in code.splitlines()):
            errors.append(
                f"check_sources.py: stale RAW_SYNC_ALLOWLIST entry {rel} — the "
                "file no longer uses raw std synchronization; remove the entry")

    for rel in sorted(MACRO_ONLY_HEADERS):
        path = root / rel
        if not path.is_file():
            errors.append(
                f"check_sources.py: stale MACRO_ONLY_HEADERS entry for deleted "
                f"file {rel} — remove it")
            continue
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        if re.search(r"^\s*namespace\s+neuro\b", code, re.MULTILINE):
            errors.append(
                f"check_sources.py: stale MACRO_ONLY_HEADERS entry {rel} — the "
                "file now declares namespace neuro; remove the entry")

    for rel in sorted(STOPWATCH_ALLOWLIST):
        path = root / rel
        if not path.is_file():
            errors.append(
                f"check_sources.py: stale STOPWATCH_ALLOWLIST entry for deleted "
                f"file {rel} — remove it")
            continue
        if not rel.startswith(STOPWATCH_DIRS):
            errors.append(
                f"check_sources.py: STOPWATCH_ALLOWLIST entry {rel} is outside "
                f"the checked directories {STOPWATCH_DIRS} — remove it")
            continue
        raw = path.read_text(encoding="utf-8")
        code = strip_comments_and_strings(raw)
        if not STOPWATCH_TOKEN_RE.search(code) and "base/stopwatch.h" not in raw:
            errors.append(
                f"check_sources.py: stale STOPWATCH_ALLOWLIST entry {rel} — the "
                "file no longer uses Stopwatch; remove the entry")

    for rel in sorted(UNBOUNDED_QUEUE_ALLOWLIST):
        path = root / rel
        if not path.is_file():
            errors.append(
                f"check_sources.py: stale UNBOUNDED_QUEUE_ALLOWLIST entry for "
                f"deleted file {rel} — remove it")
            continue
        if not rel.startswith(UNBOUNDED_QUEUE_DIRS):
            errors.append(
                f"check_sources.py: UNBOUNDED_QUEUE_ALLOWLIST entry {rel} is "
                f"outside the checked directories {UNBOUNDED_QUEUE_DIRS} — "
                "remove it")
            continue
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        if not any(UNBOUNDED_QUEUE_RE.search(line) for line in code.splitlines()):
            errors.append(
                f"check_sources.py: stale UNBOUNDED_QUEUE_ALLOWLIST entry {rel} "
                "— the file no longer uses an unbounded queue; remove the entry")

    # The SIMD confinement rule must keep guarding live code: at least one
    # file under SIMD_DIR must still include an intrinsics header and use an
    # intrinsic token. If the kernels move or go scalar-only, this trips, and
    # the fix is to retarget SIMD_DIR (or retire the rule) in the same change.
    simd_root = root / SIMD_DIR
    simd_has_header = simd_has_token = False
    if simd_root.is_dir():
        for path in sorted(simd_root.rglob("*")):
            if path.suffix not in CPP_SUFFIXES:
                continue
            raw = path.read_text(encoding="utf-8")
            code = strip_comments_and_strings(raw)
            for raw_line, code_line in zip(raw.splitlines(), code.splitlines()):
                m = INCLUDE_RE.match(raw_line)
                if (m and code_line.lstrip().startswith("#")
                        and m.group(2) in SIMD_INCLUDE_HEADERS):
                    simd_has_header = True
            if SIMD_TOKEN_RE.search(code):
                simd_has_token = True
    if not (simd_has_header and simd_has_token):
        errors.append(
            f"check_sources.py: SIMD confinement rule is stale — no file under "
            f"{SIMD_DIR} {'includes an intrinsics header' if not simd_has_header else 'uses an intrinsic token'}; "
            "the vector kernels moved or went scalar-only, so retarget "
            "SIMD_DIR or retire the rule")

    for rel in sorted(NEURO_CHECK_BUDGET):
        budget = NEURO_CHECK_BUDGET[rel]
        path = root / rel
        if not path.is_file():
            errors.append(
                f"check_sources.py: stale NEURO_CHECK_BUDGET entry for deleted "
                f"file {rel} — remove it")
            continue
        if not rel.startswith(NEURO_CHECK_DIRS):
            errors.append(
                f"check_sources.py: NEURO_CHECK_BUDGET entry {rel} is outside "
                f"the checked directories {NEURO_CHECK_DIRS} — remove it")
            continue
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        used = sum(1 for line in code.splitlines() if NEURO_CHECK_RE.search(line))
        if used < budget:
            errors.append(
                f"check_sources.py: NEURO_CHECK_BUDGET for {rel} is {budget} but "
                f"the file uses only {used} — lower the budget to {used} so the "
                "freed slack cannot absorb new checks unreviewed")
    return errors


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[2]
    files = []
    for d in CPP_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(p for p in sorted(base.rglob("*")) if p.suffix in CPP_SUFFIXES)
    all_errors: list[str] = []
    for path in files:
        all_errors.extend(check_file(root, path))
    all_errors.extend(check_allowlist_drift(root))
    if all_errors:
        print(f"check_sources: {len(all_errors)} violation(s) in {len(files)} files:")
        for e in all_errors:
            print(f"  {e}")
        return 1
    print(f"check_sources: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

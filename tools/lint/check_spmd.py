#!/usr/bin/env python3
"""Static SPMD collective-safety analyzer.

The par runtime executes one body per rank (threads-as-ranks); collectives
(`barrier`, `broadcast`, `allreduce_*`, `allgatherv`, `allgather_parts`) only
complete when *every* rank reaches them in the same order. The runtime
verifier (par/verify.h) catches divergence at run time, but only on the
schedules the tests happen to execute. This tool rejects the bug classes
*statically*, before any schedule runs:

  rank-conditional-collective  a collective (or a call that forwards the
                               Communicator) under control flow whose
                               condition depends on the rank
  early-exit-past-collective   a rank-dependent return/throw that skips a
                               collective executed on other ranks
  divergent-tag                a send/recv/isend/irecv whose *tag* argument
                               is computed from the rank, so matching pairs
                               disagree on the mailbox key

Analysis targets are (a) lambda bodies handed to run_spmd and (b) every
function taking a `par::Communicator&` parameter — collectives are methods on
Communicator, so any transitively reachable collective site necessarily sits
in such a function and is analyzed on its own. The runtime itself
(src/par/communicator.*) is excluded: it implements the collectives and is
legitimately rank-divergent inside.

Two engines share the reporting and suppression layer:

  clang  libclang over compile_commands.json (use --compdb). Preferred when
         the `clang.cindex` Python bindings are importable.
  text   a built-in tokenizer/scope-tracker needing no toolchain. Runs
         everywhere, including gcc-only containers.

`--engine auto` (default) picks clang when importable, else text.
`--engine clang` exits with status 77 when libclang is unavailable so CTest
can mark the entry SKIPPED instead of failed.

A finding is suppressed only by a grep-able marker on the same or the
immediately preceding line:

    // NEURO_SPMD_OK(<reason>)

`--self-test` runs the analyzer over tests/spmd_lint/ fixtures and checks the
findings against their `// EXPECT: <check>@<line>` comments (a fixture with
`// EXPECT-CLEAN` must produce none); any mismatch — missed seeded bug or
spurious extra — fails.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys

COLLECTIVES = {
    "barrier",
    "broadcast",
    "allreduce_sum",
    "allreduce_max",
    "allreduce_min",
    "allgatherv",
    "allgather_parts",
}
# Point-to-point calls: the tag is argument index 1 for all four
# (send(dst, tag, data), recv(src, tag), isend, irecv).
P2P = {"send", "recv", "isend", "irecv"}
CONTROL_KEYWORDS = {"if", "while", "for", "switch"}
EXIT_KEYWORDS = {"return", "throw", "co_return"}

SUPPRESS_RE = re.compile(r"NEURO_SPMD_OK\s*\(")
RANK_SOURCE_RE = re.compile(r"\.\s*rank\s*\(\s*\)|\brank_id\s*\(\s*\)")

# The collective runtime itself; rank-divergent by design.
EXCLUDED = ("src/par/communicator.h", "src/par/communicator.cpp")

CHECK_RANK_COND = "rank-conditional-collective"
CHECK_EARLY_EXIT = "early-exit-past-collective"
CHECK_DIVERGENT_TAG = "divergent-tag"


@dataclasses.dataclass(frozen=True)
class Finding:
    path: str
    line: int
    check: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Returns same-length text with comments/char/string literals blanked.

    Newlines are preserved so offsets and line numbers survive; everything
    else inside a literal or comment becomes a space.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def suppressed_lines(original: str) -> set[int]:
    """Line numbers carrying a NEURO_SPMD_OK(<reason>) marker."""
    lines = set()
    for idx, line in enumerate(original.splitlines(), start=1):
        if SUPPRESS_RE.search(line):
            lines.add(idx)
    return lines


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def match_balanced(text: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    """Index just past the bracket matching text[open_pos]; -1 if unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def split_top_level_args(arglist: str) -> list[str]:
    """Splits a bracket-free-at-top-level argument list on commas."""
    args: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in arglist:
        if ch in "([{<":
            # '<' is ambiguous (less-than vs template); good enough for tag
            # extraction — tags are ints, not templates with commas.
            depth += 1
        elif ch in ")]}>":
            depth = max(0, depth - 1)
        if ch == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    if current:
        args.append("".join(current).strip())
    return args


# --------------------------------------------------------------------------
# Textual engine
# --------------------------------------------------------------------------

WORD_RE = re.compile(r"[A-Za-z_]\w*")
COMM_PARAM_RE = re.compile(r"(?:par\s*::\s*)?Communicator\s*&\s*([A-Za-z_]\w*)")
ASSIGN_RE = re.compile(
    r"(?<![<>!=+\-*/%&|^])\b([A-Za-z_]\w*)\s*(?:[+\-*/%&|^]?=)(?!=)\s*([^;]*);"
)


@dataclasses.dataclass
class Region:
    """One analysis target: a function body with Communicator access."""

    comm: str  # parameter name of the Communicator
    body_start: int  # offset just past the opening '{'
    body_end: int  # offset of the closing '}'


@dataclasses.dataclass
class Scope:
    tainted: bool
    braced: bool
    at_depth: int  # brace depth inside the scope (braced only)
    kind: str


@dataclasses.dataclass
class Event:
    kind: str  # 'collective' | 'indirect' | 'exit' | 'p2p'
    pos: int
    tainted_scopes: tuple[int, ...]  # ids of enclosing tainted scopes
    detail: str


class TextEngine:
    """Tokenizer + brace/scope tracker + rank-taint propagation.

    No preprocessing and no type information, so it over-approximates where
    cheap (any `foo(..., comm, ...)` call counts as collective-bearing) and
    relies on naming where types are unavailable (`.rank()` / `rank_id()` are
    the taint sources). Precision is validated by --self-test fixtures and by
    the zero-findings requirement on the real tree.
    """

    name = "text"

    def analyze_file(self, path: pathlib.Path, rel: str) -> list[Finding]:
        original = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_comments_and_strings(original)
        ok_lines = suppressed_lines(original)
        findings: list[Finding] = []
        for region in self._find_regions(stripped):
            findings.extend(self._analyze_region(stripped, region, rel))
        return [
            f
            for f in findings
            if f.line not in ok_lines and (f.line - 1) not in ok_lines
        ]

    def _find_regions(self, s: str) -> list[Region]:
        regions = []
        for m in COMM_PARAM_RE.finditer(s):
            comm = m.group(1)
            # Walk out of the parameter list: we are inside at least one '('.
            i = m.end()
            depth = 1
            while i < len(s) and depth > 0:
                if s[i] == "(":
                    depth += 1
                elif s[i] == ")":
                    depth -= 1
                i += 1
            if depth != 0:
                continue
            # Skip qualifiers / attributes / ctor-inits up to '{' or give up
            # at ';' (pure declaration) or another unexpected construct.
            body_open = -1
            j = i
            while j < len(s):
                c = s[j]
                if c == "{":
                    body_open = j
                    break
                if c == ";":
                    break
                if c == "(":  # ctor-init argument list or noexcept(...)
                    j = match_balanced(s, j, "(", ")")
                    if j < 0:
                        break
                    continue
                j += 1
            if body_open < 0:
                continue
            body_close = match_balanced(s, body_open, "{", "}")
            if body_close < 0:
                continue
            regions.append(Region(comm, body_open + 1, body_close - 1))
        # Keep only outermost regions: a lambda taking Communicator& defined
        # inside another analyzed function would otherwise be scanned twice.
        regions.sort(key=lambda r: (r.body_start, -r.body_end))
        result: list[Region] = []
        for r in regions:
            if result and r.body_end <= result[-1].body_end:
                continue
            result.append(r)
        return result

    def _tainted_idents(self, body: str, comm: str) -> set[str]:
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for m in ASSIGN_RE.finditer(body):
                lhs, rhs = m.group(1), m.group(2)
                if lhs in tainted:
                    continue
                if self._expr_tainted(rhs, tainted):
                    tainted.add(lhs)
                    changed = True
        tainted.discard(comm)
        return tainted

    @staticmethod
    def _expr_tainted(expr: str, tainted: set[str]) -> bool:
        if RANK_SOURCE_RE.search(expr):
            return True
        return any(w in tainted for w in WORD_RE.findall(expr))

    def _analyze_region(self, s: str, region: Region, rel: str) -> list[Finding]:
        body = s[region.body_start : region.body_end]
        tainted = self._tainted_idents(body, region.comm)
        events = self._scan(s, region, tainted)
        findings: list[Finding] = []
        for idx, ev in enumerate(events):
            if ev.kind in ("collective", "indirect") and ev.tainted_scopes:
                what = (
                    f"collective {ev.detail}"
                    if ev.kind == "collective"
                    else f"call {ev.detail} (forwards the Communicator)"
                )
                findings.append(
                    Finding(
                        rel,
                        line_of(s, ev.pos),
                        CHECK_RANK_COND,
                        f"{what} under rank-dependent control flow; every "
                        "rank must reach each collective or the team "
                        "deadlocks",
                    )
                )
            elif ev.kind == "exit" and ev.tainted_scopes:
                guard = set(ev.tainted_scopes)
                for later in events[idx + 1 :]:
                    if later.kind not in ("collective", "indirect"):
                        continue
                    if guard.isdisjoint(later.tainted_scopes):
                        findings.append(
                            Finding(
                                rel,
                                line_of(s, ev.pos),
                                CHECK_EARLY_EXIT,
                                f"rank-dependent {ev.detail} skips "
                                f"{later.detail} at line "
                                f"{line_of(s, later.pos)} that other ranks "
                                "execute",
                            )
                        )
                        break
            elif ev.kind == "p2p":
                findings.append(
                    Finding(
                        rel,
                        line_of(s, ev.pos),
                        CHECK_DIVERGENT_TAG,
                        f"{ev.detail}: tag argument depends on the rank, so "
                        "sender and receiver disagree on the mailbox key",
                    )
                )
        return findings

    def _scan(self, s: str, region: Region, tainted: set[str]) -> list[Event]:
        events: list[Event] = []
        scopes: list[Scope] = []
        scope_serial = [0]
        scope_ids: list[int] = []
        brace_depth = 0
        paren_depth = 0
        # pending control header waiting for its body ('{' or statement)
        pending: list[tuple[bool, str]] = []
        last_if_taint = False
        i = region.body_start
        end = region.body_end

        def tainted_ids() -> tuple[int, ...]:
            return tuple(
                sid for sid, sc in zip(scope_ids, scopes) if sc.tainted
            )

        def open_scope(tnt: bool, braced: bool, kind: str) -> None:
            scopes.append(Scope(tnt, braced, brace_depth, kind))
            scope_serial[0] += 1
            scope_ids.append(scope_serial[0])

        def close_top() -> None:
            nonlocal last_if_taint
            sc = scopes.pop()
            scope_ids.pop()
            if sc.kind == "if":
                last_if_taint = sc.tainted

        while i < end:
            c = s[i]
            if c == "{":
                brace_depth += 1
                if pending:
                    tnt, kind = pending.pop()
                    open_scope(tnt, True, kind)
                i += 1
                continue
            if c == "}":
                brace_depth -= 1
                while scopes and scopes[-1].braced and scopes[-1].at_depth > brace_depth:
                    close_top()
                i += 1
                continue
            if c == "(":
                paren_depth += 1
                i += 1
                continue
            if c == ")":
                paren_depth -= 1
                i += 1
                continue
            if c == ";" and paren_depth == 0:
                while scopes and not scopes[-1].braced:
                    close_top()
                i += 1
                continue
            if c.isalpha() or c == "_":
                m = WORD_RE.match(s, i)
                assert m is not None
                word = m.group(0)
                j = m.end()
                if word in CONTROL_KEYWORDS:
                    open_paren = s.find("(", j, end)
                    if open_paren < 0:
                        i = j
                        continue
                    cond_end = match_balanced(s, open_paren, "(", ")")
                    if cond_end < 0:
                        i = j
                        continue
                    cond = s[open_paren + 1 : cond_end - 1]
                    tnt = self._expr_tainted(cond, tainted)
                    if pending:  # `else if (...)`: inherit the else taint
                        tnt = tnt or pending.pop()[0]
                    pending.append((tnt, word))
                    i = cond_end
                    continue
                if word == "else":
                    pending.append((last_if_taint, "else"))
                    i = j
                    continue
                if word in EXIT_KEYWORDS:
                    if pending:  # unbraced `if (...) return;`
                        tnt, kind = pending.pop()
                        open_scope(tnt, False, kind)
                    events.append(Event("exit", i, tainted_ids(), word))
                    i = j
                    continue
                if pending:
                    # Any other statement token consumes the pending control
                    # header as an unbraced single-statement scope.
                    tnt, kind = pending.pop()
                    open_scope(tnt, False, kind)
                if word == region.comm:
                    ev, nxt = self._comm_call(s, i, j, end, region.comm, tainted, tainted_ids())
                    if ev is not None:
                        events.append(ev)
                    i = nxt
                    continue
                # Indirect collective-bearing call: foo(..., comm, ...).
                open_paren = j
                while open_paren < end and s[open_paren] in " \t\n":
                    open_paren += 1
                if open_paren < end and s[open_paren] == "(" and word not in EXIT_KEYWORDS:
                    close = match_balanced(s, open_paren, "(", ")")
                    if close > 0:
                        args = s[open_paren + 1 : close - 1]
                        # `comm` must be an argument itself; `comm.recv(...)`
                        # as an argument passes a payload, not the Communicator.
                        if re.search(rf"\b{re.escape(region.comm)}\b(?!\s*\.)", args):
                            events.append(
                                Event("indirect", i, tainted_ids(), f"{word}(...)")
                            )
                            # Do not skip the args: nested comm.X(...) calls
                            # inside them must still be scanned.
                i = j
                continue
            i += 1
        return events

    def _comm_call(
        self,
        s: str,
        pos: int,
        after_word: int,
        end: int,
        comm: str,
        tainted: set[str],
        tainted_scopes: tuple[int, ...],
    ) -> tuple[Event | None, int]:
        """Parses `comm.<method>[<T>](args)` at pos; returns (event, resume)."""
        j = after_word
        while j < end and s[j] in " \t\n":
            j += 1
        if j >= end or s[j] != ".":
            return None, after_word
        j += 1
        while j < end and s[j] in " \t\n":
            j += 1
        m = WORD_RE.match(s, j)
        if m is None:
            return None, after_word
        method = m.group(0)
        j = m.end()
        if j < end and s[j] == "<":  # explicit template args, e.g. recv<int>
            close_angle = match_balanced(s, j, "<", ">")
            if close_angle > 0:
                j = close_angle
        while j < end and s[j] in " \t\n":
            j += 1
        if j >= end or s[j] != "(":
            return None, after_word
        close = match_balanced(s, j, "(", ")")
        if close < 0:
            return None, after_word
        if method in COLLECTIVES:
            return Event("collective", pos, tainted_scopes, f"{comm}.{method}()"), after_word
        if method in P2P:
            args = split_top_level_args(s[j + 1 : close - 1])
            if len(args) >= 2 and self._expr_tainted(args[1], tainted):
                return (
                    Event("p2p", pos, tainted_scopes, f"{comm}.{method}(..., {args[1]}, ...)"),
                    after_word,
                )
        return None, after_word


# --------------------------------------------------------------------------
# libclang engine
# --------------------------------------------------------------------------


class ClangEngine:
    """AST-accurate variant of the same three checks via clang.cindex.

    Regions are CXX lambdas/functions/methods with a `Communicator&`
    parameter; taint is tracked per VarDecl whose initializer (or any
    assignment) references rank()/rank_id() or a tainted variable; control
    dependence comes from the real statement tree instead of brace counting.
    """

    name = "clang"

    def __init__(self) -> None:
        from clang import cindex  # noqa: PLC0415  (probed by engine selection)

        self.cindex = cindex
        self.index = cindex.Index.create()

    def analyze_file(
        self, path: pathlib.Path, rel: str, args: list[str] | None = None
    ) -> list[Finding]:
        original = path.read_text(encoding="utf-8", errors="replace")
        ok_lines = suppressed_lines(original)
        tu = self.index.parse(str(path), args=args or ["-std=c++20"])
        findings: list[Finding] = []
        for cursor in tu.cursor.walk_preorder():
            if cursor.location.file is None or cursor.location.file.name != str(path):
                continue
            comm = self._comm_param(cursor)
            if comm is None:
                continue
            body = self._body_of(cursor)
            if body is None:
                continue
            findings.extend(self._analyze_body(body, comm, rel))
        return [
            f
            for f in findings
            if f.line not in ok_lines and (f.line - 1) not in ok_lines
        ]

    def _comm_param(self, cursor):
        kinds = self.cindex.CursorKind
        if cursor.kind not in (
            kinds.FUNCTION_DECL,
            kinds.CXX_METHOD,
            kinds.LAMBDA_EXPR,
            kinds.FUNCTION_TEMPLATE,
        ):
            return None
        for child in cursor.get_children():
            if child.kind != kinds.PARM_DECL:
                continue
            if "Communicator" in child.type.spelling:
                return child.spelling or "comm"
        return None

    def _body_of(self, cursor):
        kinds = self.cindex.CursorKind
        for child in cursor.get_children():
            if child.kind == kinds.COMPOUND_STMT:
                return child
        return None

    def _analyze_body(self, body, comm: str, rel: str) -> list[Finding]:
        engine = TextEngine()
        tainted: set[str] = set()
        kinds = self.cindex.CursorKind

        def node_text(node) -> str:
            return " ".join(t.spelling for t in node.get_tokens())

        changed = True
        while changed:
            changed = False
            for node in body.walk_preorder():
                if node.kind == kinds.VAR_DECL and node.spelling not in tainted:
                    if engine._expr_tainted(node_text(node), tainted):
                        tainted.add(node.spelling)
                        changed = True

        events: list[Event] = []

        def visit(node, tainted_scopes: tuple[int, ...], serial: list[int]) -> None:
            for child in node.get_children():
                scopes = tainted_scopes
                if child.kind in (
                    kinds.IF_STMT,
                    kinds.WHILE_STMT,
                    kinds.FOR_STMT,
                    kinds.SWITCH_STMT,
                ):
                    cond_children = list(child.get_children())
                    cond = cond_children[0] if cond_children else None
                    is_tainted = cond is not None and engine._expr_tainted(
                        node_text(cond), tainted
                    )
                    if is_tainted:
                        serial[0] += 1
                        scopes = tainted_scopes + (serial[0],)
                if child.kind in (kinds.RETURN_STMT, kinds.CXX_THROW_EXPR):
                    if scopes:
                        events.append(
                            Event(
                                "exit",
                                child.location.line,
                                scopes,
                                child.kind.name.split("_")[0].lower(),
                            )
                        )
                if child.kind == kinds.CALL_EXPR:
                    name = child.spelling
                    if name in COLLECTIVES:
                        events.append(
                            Event("collective", child.location.line, scopes, f"{comm}.{name}()")
                        )
                    elif name in P2P:
                        args = list(child.get_arguments())
                        if len(args) >= 2 and engine._expr_tainted(
                            node_text(args[1]), tainted
                        ):
                            events.append(
                                Event("p2p", child.location.line, scopes, f"{comm}.{name}(...)")
                            )
                    else:
                        arg_text = " , ".join(node_text(a) for a in child.get_arguments())
                        if re.search(rf"\b{re.escape(comm)}\b(?!\s*\.)", arg_text):
                            events.append(
                                Event("indirect", child.location.line, scopes, f"{name}(...)")
                            )
                visit(child, scopes, serial)

        visit(body, (), [0])

        findings: list[Finding] = []
        for idx, ev in enumerate(events):
            # Event.pos already holds a line number in this engine.
            if ev.kind in ("collective", "indirect") and ev.tainted_scopes:
                findings.append(
                    Finding(
                        rel,
                        ev.pos,
                        CHECK_RANK_COND,
                        f"{ev.detail} under rank-dependent control flow",
                    )
                )
            elif ev.kind == "exit" and ev.tainted_scopes:
                guard = set(ev.tainted_scopes)
                for later in events[idx + 1 :]:
                    if later.kind in ("collective", "indirect") and guard.isdisjoint(
                        later.tainted_scopes
                    ):
                        findings.append(
                            Finding(
                                rel,
                                ev.pos,
                                CHECK_EARLY_EXIT,
                                f"rank-dependent {ev.detail} skips {later.detail} "
                                f"at line {later.pos}",
                            )
                        )
                        break
            elif ev.kind == "p2p":
                findings.append(
                    Finding(rel, ev.pos, CHECK_DIVERGENT_TAG, f"{ev.detail}: rank-dependent tag")
                )
        return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def make_engine(requested: str):
    if requested in ("auto", "clang"):
        try:
            return ClangEngine()
        except ImportError:
            if requested == "clang":
                print("check_spmd: clang.cindex not importable; skipping", file=sys.stderr)
                sys.exit(77)
    return TextEngine()


def iter_tree_files(root: pathlib.Path):
    for sub in ("src", "apps", "bench"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cpp"):
                continue
            rel = path.relative_to(root).as_posix()
            if rel in EXCLUDED:
                continue
            yield path, rel


def compdb_args(root: pathlib.Path, compdb: pathlib.Path) -> dict[str, list[str]]:
    """Maps absolute file path -> compile args (include dirs / std only)."""
    entries = json.loads(compdb.read_text(encoding="utf-8"))
    result: dict[str, list[str]] = {}
    keep = ("-I", "-D", "-std=", "-isystem")
    for entry in entries:
        file = str((pathlib.Path(entry["directory"]) / entry["file"]).resolve())
        raw = entry.get("arguments") or entry.get("command", "").split()
        args = [a for a in raw if a.startswith(keep)]
        result[file] = args
    return result


EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([\w-]+)\s*@\s*(\d+)")
EXPECT_CLEAN_RE = re.compile(r"//\s*EXPECT-CLEAN\b")


def run_self_test(engine, fixtures_dir: pathlib.Path) -> int:
    failures = 0
    fixture_files = sorted(fixtures_dir.glob("*.cpp"))
    if not fixture_files:
        print(f"check_spmd: no fixtures in {fixtures_dir}", file=sys.stderr)
        return 1
    for path in fixture_files:
        text = path.read_text(encoding="utf-8")
        expected = {(m.group(1), int(m.group(2))) for m in EXPECT_RE.finditer(text)}
        is_clean = EXPECT_CLEAN_RE.search(text) is not None
        if not expected and not is_clean:
            print(f"{path.name}: fixture has neither EXPECT: nor EXPECT-CLEAN")
            failures += 1
            continue
        got_findings = engine.analyze_file(path, path.name)
        got = {(f.check, f.line) for f in got_findings}
        missed = expected - got
        extra = got - expected
        for check, line in sorted(missed):
            print(f"{path.name}: MISSED seeded bug [{check}] at line {line}")
            failures += 1
        for check, line in sorted(extra):
            print(f"{path.name}: SPURIOUS finding [{check}] at line {line}")
            failures += 1
        if not missed and not extra:
            label = "clean" if is_clean else f"{len(expected)} seeded"
            print(f"check_spmd self-test OK: {path.name} ({label})")
    if failures:
        print(f"check_spmd self-test: {failures} mismatch(es)", file=sys.stderr)
        return 1
    print(f"check_spmd self-test: OK ({len(fixture_files)} fixtures, engine={engine.name})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path, default=pathlib.Path.cwd(),
                        help="repository root to scan (default: cwd)")
    parser.add_argument("--compdb", type=pathlib.Path, default=None,
                        help="compile_commands.json for the clang engine")
    parser.add_argument("--engine", choices=("auto", "text", "clang"), default="auto")
    parser.add_argument("--self-test", action="store_true",
                        help="validate against tests/spmd_lint fixtures")
    args = parser.parse_args()

    engine = make_engine(args.engine)

    if args.self_test:
        return run_self_test(engine, args.root / "tests" / "spmd_lint")

    per_file_args: dict[str, list[str]] = {}
    if args.compdb is not None and isinstance(engine, ClangEngine):
        if args.compdb.is_file():
            per_file_args = compdb_args(args.root, args.compdb)
        else:
            print(f"check_spmd: {args.compdb} missing; using default clang args",
                  file=sys.stderr)

    findings: list[Finding] = []
    scanned = 0
    for path, rel in iter_tree_files(args.root):
        scanned += 1
        if isinstance(engine, ClangEngine):
            extra = per_file_args.get(str(path.resolve()))
            findings.extend(
                engine.analyze_file(path, rel, (extra or []) + ["-std=c++20", f"-I{args.root / 'src'}"])
            )
        else:
            findings.extend(engine.analyze_file(path, rel))

    for f in findings:
        print(f.render())
    if findings:
        print(
            f"check_spmd: {len(findings)} finding(s) in {scanned} files "
            f"(engine={engine.name}); suppress only with "
            "// NEURO_SPMD_OK(reason)",
            file=sys.stderr,
        )
        return 1
    print(f"check_spmd: OK ({scanned} files, engine={engine.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

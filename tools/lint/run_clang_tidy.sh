#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the library and
# tool sources using the compilation database of an existing build directory.
#
#   tools/lint/run_clang_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build directory must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the CI clang-static job does this).
# Exits 0 with a notice only on hosts with no clang toolchain at all; a host
# that has clang but lacks clang-tidy or the compilation database is a
# misconfigured analysis environment and fails loudly instead of skipping —
# a silent skip here would let CI report green without analyzing anything.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
[ "${1:-}" = "--" ] && shift

tidy_bin=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy_bin="$candidate"
    break
  fi
done
if [ -z "$tidy_bin" ]; then
  for candidate in clang clang-18 clang-17 clang-16 clang-15; do
    if command -v "$candidate" > /dev/null 2>&1; then
      echo "run_clang_tidy: $candidate is installed but clang-tidy is not;" \
           "install clang-tidy or drop clang from this host." >&2
      exit 1
    fi
  done
  echo "run_clang_tidy: no clang toolchain on PATH; skipping (not an error)."
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json not found." >&2
  echo "Configure with: cmake -B $build_dir -S $repo_root -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

cd "$repo_root"
files=$(find src tools -name '*.cpp' ! -path 'tools/lint/*' | sort)
echo "run_clang_tidy: $tidy_bin over $(echo "$files" | wc -l) files (db: $build_dir)"
# shellcheck disable=SC2086
exec "$tidy_bin" -p "$build_dir" --quiet "$@" $files

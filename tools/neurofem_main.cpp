// neurofem — command-line front end for the library.
//
//   neurofem phantom  --out CASE [--dims 96] [--spacing 2.5] [--seed 42]
//                     [--sink-mm 8] [--offset-x mm --offset-y mm --offset-z mm]
//       Generates a synthetic case: CASE_preop.mhd, CASE_preop_labels.mhd,
//       CASE_intraop.mhd, CASE_intraop_labels.mhd (+ .raw files).
//
//   neurofem pipeline --preop a.mhd --labels l.mhd --intraop b.mhd --out OUT
//                     [--ranks 2] [--stride 3] [--rigid 1] [--hetero 0]
//       Runs the full intraoperative pipeline, writes OUT_warped.mhd,
//       OUT_segmentation.mhd, OUT_montage.ppm, OUT_surface.ply and a report.
//
//   neurofem segment  --scan b.mhd --labels l.mhd --out OUT
//       k-NN tissue classification only; writes OUT_segmentation.mhd.
//
//   neurofem mesh     --labels l.mhd --out OUT [--stride 2] [--keep 3,4,5,6]
//       Tetrahedral meshing only; writes OUT_surface.obj and prints stats.
//
//   neurofem info     --volume v.mhd
//       Prints geometry and intensity statistics.
//
//   neurofem obs      --bundle postmortem.json | --snapshot snapshot.json
//       Pretty-prints a flight-recorder post-mortem bundle or a live
//       telemetry snapshot (docs/observability.md).
#include <cstdio>
#include <cstring>

#include "base/check.h"

namespace neuro::cli {
int cmd_phantom(int argc, char** argv);
int cmd_pipeline(int argc, char** argv);
int cmd_segment(int argc, char** argv);
int cmd_mesh(int argc, char** argv);
int cmd_info(int argc, char** argv);
int cmd_warp(int argc, char** argv);
int cmd_obs(int argc, char** argv);
}  // namespace neuro::cli

namespace {

void usage() {
  std::printf(
      "usage: neurofem <command> [--flag value ...]\n"
      "commands:\n"
      "  phantom   generate a synthetic neurosurgery case (MetaImage volumes)\n"
      "  pipeline  run the full intraoperative registration pipeline\n"
      "  segment   k-NN tissue classification of one scan\n"
      "  mesh      tetrahedral meshing of a label volume\n"
      "  info      inspect a MetaImage volume\n"
      "  warp      apply a stored deformation field to further volumes\n"
      "  obs       pretty-print post-mortem bundles and telemetry snapshots\n"
      "run `neurofem <command>` with no flags to see its required inputs.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const char* cmd = argv[1];
  try {
    if (std::strcmp(cmd, "phantom") == 0) return neuro::cli::cmd_phantom(argc, argv);
    if (std::strcmp(cmd, "pipeline") == 0) return neuro::cli::cmd_pipeline(argc, argv);
    if (std::strcmp(cmd, "segment") == 0) return neuro::cli::cmd_segment(argc, argv);
    if (std::strcmp(cmd, "mesh") == 0) return neuro::cli::cmd_mesh(argc, argv);
    if (std::strcmp(cmd, "info") == 0) return neuro::cli::cmd_info(argc, argv);
    if (std::strcmp(cmd, "warp") == 0) return neuro::cli::cmd_warp(argc, argv);
    if (std::strcmp(cmd, "obs") == 0) return neuro::cli::cmd_obs(argc, argv);
    std::fprintf(stderr, "neurofem: unknown command '%s'\n", cmd);
    usage();
    return 2;
  } catch (const neuro::CheckError& e) {
    std::fprintf(stderr, "neurofem %s: %s\n", cmd, e.what());
    return 1;
  }
}

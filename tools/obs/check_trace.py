#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file exported by neuro::obs.

Checks, in order:

  1. Schema: top-level {"traceEvents": [...]}, every event a dict with a
     known phase ("M" metadata, "X" complete span, "C" counter, "I" instant),
     required fields per phase, non-negative ts/dur.
  2. Thread naming: every pid/tid that carries span or counter events has a
     thread_name metadata event; tid 0 is "main", tid N+1 is "rank N" --
     exactly one Perfetto thread per rank.
  3. Monotonic timestamps: within each (pid, tid), events appear in
     non-decreasing ts order (the exporter's deterministic merge order).
  4. Balanced spans: within each thread, complete events either nest
     (child fully contained in parent) or are disjoint; partial overlap
     means a Span outlived its parent scope and the trace would render
     nonsense in Perfetto.
  5. Truncation: a "trace_truncated" instant event (emitted when the
     per-stream cap dropped events) fails validation unless
     --allow-truncated is given.

With --expect-pipeline the trace must additionally look like a full
run_intraop_pipeline run (ISSUE 5 acceptance): one span per pipeline stage,
at least one "fem.rung" span per degradation rung attempted, and at least one
Krylov per-iteration span carrying a "residual" attribute.

Usage: check_trace.py trace.json [--expect-pipeline] [--allow-truncated]
"""

import json
import sys

# Nesting comparisons tolerate the exporter's 3-decimal microsecond rounding.
EPS_US = 0.002

PIPELINE_STAGES = [
    "pipeline.rigid_registration",
    "pipeline.tissue_classification",
    "pipeline.surface_displacement",
    "pipeline.biomechanical_simulation",
    "pipeline.visualization_resample",
]
KRYLOV_SPANS = ("gmres.iteration", "cg.iteration", "bicgstab.iteration")


def fail(errors, msg):
    errors.append(msg)


def check_schema(events, errors):
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(errors, f"event {i}: not an object")
            continue
        ph = e.get("ph")
        if ph not in ("M", "X", "C", "I"):
            fail(errors, f"event {i}: unknown phase {ph!r}")
            continue
        if "name" not in e or not isinstance(e["name"], str):
            fail(errors, f"event {i}: missing name")
        if ph in ("X", "C", "I"):
            ts = e.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(errors, f"event {i} ({e.get('name')}): bad ts {ts!r}")
            if "tid" not in e or "pid" not in e:
                fail(errors, f"event {i} ({e.get('name')}): missing pid/tid")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(errors, f"event {i} ({e.get('name')}): bad dur {dur!r}")
        if ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or "value" not in args:
                fail(errors, f"event {i} ({e.get('name')}): counter missing args.value")


def check_threads(events, errors):
    thread_names = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            key = (e.get("pid"), e.get("tid"))
            name = e.get("args", {}).get("name")
            if key in thread_names:
                fail(errors, f"duplicate thread_name for pid/tid {key}")
            thread_names[key] = name

    used = set()
    for e in events:
        if e.get("ph") in ("X", "C"):
            used.add((e.get("pid"), e.get("tid")))
    for key in sorted(used, key=str):
        if key not in thread_names:
            fail(errors, f"pid/tid {key} has events but no thread_name metadata")
            continue
        pid, tid = key
        name = thread_names[key]
        expected = "main" if tid == 0 else f"rank {tid - 1}"
        if name != expected:
            fail(errors, f"tid {tid} named {name!r}, expected {expected!r} "
                         "(one thread per rank)")

    names = [v for k, v in thread_names.items()]
    if len(names) != len(set(names)):
        fail(errors, "thread names are not unique (two tids share a rank)")
    return used


def check_monotonic_and_nesting(events, errors):
    by_thread = {}
    for e in events:
        if e.get("ph") in ("X", "C"):
            by_thread.setdefault((e.get("pid"), e.get("tid")), []).append(e)

    for key, evs in sorted(by_thread.items(), key=str):
        last_ts = -1.0
        for e in evs:
            ts = e.get("ts", 0)
            if ts < last_ts:
                fail(errors, f"tid {key[1]}: ts not monotonic at "
                             f"{e.get('name')} ({ts} after {last_ts})")
                break
            last_ts = ts

        # Balanced-span check via containment: sweep in (ts, -dur) order with
        # a stack of open intervals.
        spans = [e for e in evs if e["ph"] == "X"]
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (end_ts, name)
        for e in spans:
            start, end = e["ts"], e["ts"] + e["dur"]
            while stack and stack[-1][0] <= start + EPS_US:
                stack.pop()
            if stack and end > stack[-1][0] + EPS_US:
                fail(errors, f"tid {key[1]}: span {e['name']!r} "
                             f"[{start:.3f}, {end:.3f}] partially overlaps "
                             f"enclosing {stack[-1][1]!r} (ends {stack[-1][0]:.3f})")
                break
            stack.append((end, e["name"]))


def check_pipeline_expectations(events, errors):
    spans = [e for e in events if e.get("ph") == "X"]
    names = {}
    for e in spans:
        names.setdefault(e["name"], []).append(e)

    for stage in PIPELINE_STAGES:
        if stage not in names:
            fail(errors, f"expected a span for pipeline stage {stage!r}")
    if "pipeline" not in names:
        fail(errors, "expected the 'pipeline' root span")
    if "fem.rung" not in names:
        fail(errors, "expected at least one 'fem.rung' degradation-rung span")
    else:
        for e in names["fem.rung"]:
            if "rung" not in e.get("args", {}):
                fail(errors, "a 'fem.rung' span is missing its 'rung' attribute")

    iters = [e for n in KRYLOV_SPANS for e in names.get(n, [])]
    if not iters:
        fail(errors, f"expected at least one Krylov iteration span {KRYLOV_SPANS}")
    for e in iters:
        args = e.get("args", {})
        if "residual" not in args:
            fail(errors, f"{e['name']} span at ts {e['ts']} lacks a "
                         "'residual' attribute")
            break


def main(argv):
    paths = [a for a in argv[1:] if not a.startswith("--")]
    flags = {a for a in argv[1:] if a.startswith("--")}
    unknown = flags - {"--expect-pipeline", "--allow-truncated"}
    if len(paths) != 1 or unknown:
        raise SystemExit(__doc__)

    with open(paths[0]) as f:
        trace = json.load(f)
    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        raise SystemExit("FAIL: top level is not {\"traceEvents\": [...]}")
    events = trace["traceEvents"]

    errors = []
    check_schema(events, errors)
    if not errors:
        used = check_threads(events, errors)
        check_monotonic_and_nesting(events, errors)
        truncated = [e for e in events if e.get("name") == "trace_truncated"]
        if truncated and "--allow-truncated" not in flags:
            dropped = truncated[0].get("args", {}).get("dropped", "?")
            fail(errors, f"trace is truncated ({dropped} events dropped by the "
                         "per-stream cap)")
        if "--expect-pipeline" in flags:
            check_pipeline_expectations(events, errors)

    for msg in errors:
        print(f"FAIL: {msg}")
    if errors:
        return 1
    n_spans = sum(1 for e in events if e.get("ph") == "X")
    n_counters = sum(1 for e in events if e.get("ph") == "C")
    n_threads = len({(e.get('pid'), e.get('tid'))
                     for e in events if e.get("ph") in ("X", "C")})
    print(f"OK: {n_spans} spans, {n_counters} counter samples across "
          f"{n_threads} threads; schema, nesting and thread naming valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

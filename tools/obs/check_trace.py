#!/usr/bin/env python3
"""Validate observability artifacts exported by neuro::obs.

Default mode — Chrome trace-event JSON (Tracer::write_chrome_trace):

  1. Schema: top-level {"traceEvents": [...]}, every event a dict with a
     known phase ("M" metadata, "X" complete span, "C" counter, "I" instant),
     required fields per phase, non-negative ts/dur, finite counter values.
  2. Thread naming: every pid/tid that carries span or counter events has a
     thread_name metadata event; tid 0 is "main", tid N+1 is "rank N" --
     exactly one Perfetto thread per rank.
  3. Monotonic timestamps: within each (pid, tid), events appear in
     non-decreasing ts order (the exporter's deterministic merge order).
  4. Balanced spans: within each thread, complete events either nest
     (child fully contained in parent) or are disjoint; partial overlap
     means a Span outlived its parent scope and the trace would render
     nonsense in Perfetto.
  5. Truncation: "trace_truncated" instant events (one per rank whose stream
     dropped events) fail validation unless --allow-truncated is given; the
     failure message sums the per-rank drop counts.

With --expect-pipeline the trace must additionally look like a full
run_intraop_pipeline run (ISSUE 5 acceptance): one span per pipeline stage,
at least one "fem.rung" span per degradation rung attempted, and at least one
Krylov per-iteration span carrying a "residual" attribute.

Bundle mode (--bundle) — flight-recorder post-mortem JSON
(obs::FlightRecorder::write_bundle, schema neuro.postmortem.v1):

  1. Schema: required top-level sections (trigger, provenance, streams,
     ring, metrics, residual_history) with well-formed contents.
  2. Trigger: a known kind, and the ring must retain the "recorder.trigger"
     span whose args.trigger matches it (the bundle explains itself).
  3. Retention: ring capacity >= --min-ring (default 1000); per stream,
     retained == min(recorded, capacity) and wrapped == max(0,
     recorded - capacity) -- the ring keeps the *last* N events, always.
  4. Rank coverage: with --expect-ranks N, stream stats for ranks 0..N-1
     must all be present (the dump merged every rank's ring).
  5. Residual history: per (solver, rank), iteration numbers strictly
     increase and residuals are finite.

Usage: check_trace.py trace.json [--expect-pipeline] [--allow-truncated]
       check_trace.py postmortem.json --bundle [--min-ring N]
                      [--expect-ranks N] [--expect-trigger KIND]
"""

import argparse
import json
import math
import sys

# Nesting comparisons tolerate the exporter's 3-decimal microsecond rounding.
EPS_US = 0.002

PIPELINE_STAGES = [
    "pipeline.rigid_registration",
    "pipeline.tissue_classification",
    "pipeline.surface_displacement",
    "pipeline.biomechanical_simulation",
    "pipeline.visualization_resample",
]
KRYLOV_SPANS = ("gmres.iteration", "cg.iteration", "bicgstab.iteration")
BUNDLE_TRIGGERS = (
    "manual", "degradation", "watchdog", "comm_fault", "deadline_miss",
    "admission_storm", "check_failure", "fatal_signal",
)


def fail(errors, msg):
    errors.append(msg)


def check_schema(events, errors):
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(errors, f"event {i}: not an object")
            continue
        ph = e.get("ph")
        if ph not in ("M", "X", "C", "I"):
            fail(errors, f"event {i}: unknown phase {ph!r}")
            continue
        if "name" not in e or not isinstance(e["name"], str):
            fail(errors, f"event {i}: missing name")
        if ph in ("X", "C", "I"):
            ts = e.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(errors, f"event {i} ({e.get('name')}): bad ts {ts!r}")
            if "tid" not in e or "pid" not in e:
                fail(errors, f"event {i} ({e.get('name')}): missing pid/tid")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(errors, f"event {i} ({e.get('name')}): bad dur {dur!r}")
        if ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or "value" not in args:
                fail(errors, f"event {i} ({e.get('name')}): counter missing args.value")
            else:
                value = args["value"]
                if not isinstance(value, (int, float)) or not math.isfinite(value):
                    fail(errors, f"event {i} ({e.get('name')}): counter value "
                                 f"{value!r} is not a finite number")


def check_threads(events, errors):
    thread_names = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            key = (e.get("pid"), e.get("tid"))
            name = e.get("args", {}).get("name")
            if key in thread_names:
                fail(errors, f"duplicate thread_name for pid/tid {key}")
            thread_names[key] = name

    used = set()
    for e in events:
        if e.get("ph") in ("X", "C"):
            used.add((e.get("pid"), e.get("tid")))
    for key in sorted(used, key=str):
        if key not in thread_names:
            fail(errors, f"pid/tid {key} has events but no thread_name metadata")
            continue
        pid, tid = key
        name = thread_names[key]
        expected = "main" if tid == 0 else f"rank {tid - 1}"
        if name != expected:
            fail(errors, f"tid {tid} named {name!r}, expected {expected!r} "
                         "(one thread per rank)")

    names = [v for k, v in thread_names.items()]
    if len(names) != len(set(names)):
        fail(errors, "thread names are not unique (two tids share a rank)")
    return used


def check_monotonic_and_nesting(events, errors):
    by_thread = {}
    for e in events:
        if e.get("ph") in ("X", "C"):
            by_thread.setdefault((e.get("pid"), e.get("tid")), []).append(e)

    for key, evs in sorted(by_thread.items(), key=str):
        last_ts = -1.0
        for e in evs:
            ts = e.get("ts", 0)
            if ts < last_ts:
                fail(errors, f"tid {key[1]}: ts not monotonic at "
                             f"{e.get('name')} ({ts} after {last_ts})")
                break
            last_ts = ts

        # Balanced-span check via containment: sweep in (ts, -dur) order with
        # a stack of open intervals.
        spans = [e for e in evs if e["ph"] == "X"]
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (end_ts, name)
        for e in spans:
            start, end = e["ts"], e["ts"] + e["dur"]
            while stack and stack[-1][0] <= start + EPS_US:
                stack.pop()
            if stack and end > stack[-1][0] + EPS_US:
                fail(errors, f"tid {key[1]}: span {e['name']!r} "
                             f"[{start:.3f}, {end:.3f}] partially overlaps "
                             f"enclosing {stack[-1][1]!r} (ends {stack[-1][0]:.3f})")
                break
            stack.append((end, e["name"]))


def check_pipeline_expectations(events, errors):
    spans = [e for e in events if e.get("ph") == "X"]
    names = {}
    for e in spans:
        names.setdefault(e["name"], []).append(e)

    for stage in PIPELINE_STAGES:
        if stage not in names:
            fail(errors, f"expected a span for pipeline stage {stage!r}")
    if "pipeline" not in names:
        fail(errors, "expected the 'pipeline' root span")
    if "fem.rung" not in names:
        fail(errors, "expected at least one 'fem.rung' degradation-rung span")
    else:
        for e in names["fem.rung"]:
            if "rung" not in e.get("args", {}):
                fail(errors, "a 'fem.rung' span is missing its 'rung' attribute")

    iters = [e for n in KRYLOV_SPANS for e in names.get(n, [])]
    if not iters:
        fail(errors, f"expected at least one Krylov iteration span {KRYLOV_SPANS}")
    for e in iters:
        args = e.get("args", {})
        if "residual" not in args:
            fail(errors, f"{e['name']} span at ts {e['ts']} lacks a "
                         "'residual' attribute")
            break


def check_bundle_streams(bundle, min_ring, expect_ranks, errors):
    capacity = bundle.get("ring", {}).get("capacity")
    if not isinstance(capacity, int) or capacity < min_ring:
        fail(errors, f"ring capacity {capacity!r} is below the retention "
                     f"contract of {min_ring} events per rank")
        return
    streams = bundle.get("streams")
    if not isinstance(streams, list) or not streams:
        fail(errors, "bundle has no stream stats")
        return
    ranks = set()
    for i, s in enumerate(streams):
        if not isinstance(s, dict):
            fail(errors, f"stream {i}: not an object")
            continue
        fields = {}
        for key in ("rank", "recorded", "retained", "wrapped", "dropped"):
            v = s.get(key)
            if not isinstance(v, int) or (key != "rank" and v < 0):
                fail(errors, f"stream {i}: bad {key} {v!r}")
                v = None
            fields[key] = v
        if None in fields.values():
            continue
        ranks.add(fields["rank"])
        # The ring keeps the last N events: never fewer than min(recorded,
        # capacity) retained, and exactly one wrap per overwritten slot.
        want_retained = min(fields["recorded"], capacity)
        if fields["retained"] != want_retained:
            fail(errors, f"stream rank {fields['rank']}: retained "
                         f"{fields['retained']} != min(recorded, capacity) "
                         f"= {want_retained}")
        want_wrapped = max(0, fields["recorded"] - capacity)
        if fields["wrapped"] != want_wrapped:
            fail(errors, f"stream rank {fields['rank']}: wrapped "
                         f"{fields['wrapped']} != max(0, recorded - capacity) "
                         f"= {want_wrapped}")
    if expect_ranks is not None:
        missing = sorted(set(range(expect_ranks)) - ranks)
        if missing:
            fail(errors, f"bundle lacks stream stats for ranks {missing} "
                         f"(have {sorted(ranks)})")
    events = bundle.get("ring", {}).get("events", [])
    total_retained = sum(s.get("retained", 0) for s in streams
                         if isinstance(s, dict))
    if isinstance(events, list) and len(events) != total_retained:
        fail(errors, f"ring has {len(events)} events but streams claim "
                     f"{total_retained} retained")


def check_bundle_events(bundle, errors):
    events = bundle.get("ring", {}).get("events")
    if not isinstance(events, list):
        fail(errors, "ring.events is not a list")
        return
    redacted = bundle.get("provenance", {}).get("redact_timing", False)
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(errors, f"ring event {i}: not an object")
            return
        if not isinstance(e.get("name"), str) or e.get("kind") not in ("span", "counter"):
            fail(errors, f"ring event {i}: missing name or unknown kind "
                         f"{e.get('kind')!r}")
            return
        if not isinstance(e.get("rank"), int) or not isinstance(e.get("seq"), int):
            fail(errors, f"ring event {i} ({e.get('name')}): missing rank/seq")
            return
        if not redacted and not isinstance(e.get("ts_us"), (int, float)):
            fail(errors, f"ring event {i} ({e.get('name')}): missing ts_us in "
                         "an unredacted bundle")
            return
        if e["kind"] == "counter":
            value = e.get("value")
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                fail(errors, f"ring event {i} ({e.get('name')}): counter value "
                             f"{value!r} is not a finite number")
                return

    trigger_kind = bundle.get("trigger", {}).get("kind")
    marks = [e for e in events
             if isinstance(e, dict) and e.get("name") == "recorder.trigger"]
    if not any(e.get("args", {}).get("trigger") == trigger_kind for e in marks):
        fail(errors, f"ring retains no 'recorder.trigger' span matching the "
                     f"bundle trigger {trigger_kind!r} (the incident that "
                     "caused the dump must itself be in the ring)")


def check_bundle_residuals(bundle, errors):
    history = bundle.get("residual_history")
    if not isinstance(history, list):
        fail(errors, "residual_history is not a list")
        return
    last = {}
    for i, row in enumerate(history):
        if not isinstance(row, dict):
            fail(errors, f"residual_history[{i}]: not an object")
            return
        solver, rank = row.get("solver"), row.get("rank")
        iteration, residual = row.get("iteration"), row.get("residual")
        if not isinstance(solver, str) or not isinstance(rank, int) \
                or not isinstance(iteration, int) \
                or not isinstance(residual, (int, float)):
            fail(errors, f"residual_history[{i}]: malformed row {row!r}")
            return
        if not math.isfinite(residual) or residual < 0:
            fail(errors, f"residual_history[{i}]: residual {residual!r} is "
                         "not a finite non-negative number")
        key = (solver, rank)
        if key in last and iteration <= last[key]:
            fail(errors, f"residual_history[{i}]: {solver} rank {rank} "
                         f"iteration {iteration} does not increase past "
                         f"{last[key]} (history must be iteration-monotone "
                         "per solver and rank)")
        last[key] = iteration


def check_bundle(bundle, args, errors):
    if bundle.get("schema") != "neuro.postmortem.v1":
        fail(errors, f"schema {bundle.get('schema')!r} != 'neuro.postmortem.v1'")
        return
    trigger = bundle.get("trigger")
    if not isinstance(trigger, dict) or trigger.get("kind") not in BUNDLE_TRIGGERS:
        kind = trigger.get("kind") if isinstance(trigger, dict) else None
        fail(errors, f"trigger kind {kind!r} is not one of {BUNDLE_TRIGGERS}")
        return
    if args.expect_trigger and trigger["kind"] != args.expect_trigger:
        fail(errors, f"trigger kind {trigger['kind']!r} != expected "
                     f"{args.expect_trigger!r}")
    provenance = bundle.get("provenance")
    if not isinstance(provenance, dict) or "build_type" not in provenance \
            or not isinstance(provenance.get("env"), dict):
        fail(errors, "provenance section is missing or malformed")
    metrics = bundle.get("metrics")
    if not isinstance(metrics, list) or not all(
            isinstance(m, dict) and isinstance(m.get("name"), str)
            and m.get("type") in ("counter", "gauge", "histogram")
            for m in metrics):
        fail(errors, "metrics section is not a list of typed instruments")
    check_bundle_streams(bundle, args.min_ring, args.expect_ranks, errors)
    check_bundle_events(bundle, errors)
    check_bundle_residuals(bundle, errors)


def run_bundle_mode(args):
    with open(args.path) as f:
        bundle = json.load(f)
    if not isinstance(bundle, dict):
        raise SystemExit("FAIL: top level is not a JSON object")
    errors = []
    check_bundle(bundle, args, errors)
    for msg in errors:
        print(f"FAIL: {msg}")
    if errors:
        return 1
    streams = bundle["streams"]
    events = bundle["ring"]["events"]
    print(f"OK: bundle trigger '{bundle['trigger']['kind']}', "
          f"{len(events)} ring events across {len(streams)} streams, "
          f"{len(bundle['residual_history'])} residual rows; retention and "
          "schema valid")
    return 0


def run_trace_mode(args):
    with open(args.path) as f:
        trace = json.load(f)
    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        raise SystemExit("FAIL: top level is not {\"traceEvents\": [...]}")
    events = trace["traceEvents"]

    errors = []
    check_schema(events, errors)
    if not errors:
        check_threads(events, errors)
        check_monotonic_and_nesting(events, errors)
        truncated = [e for e in events if e.get("name") == "trace_truncated"]
        if truncated and not args.allow_truncated:
            total = sum(e.get("args", {}).get("dropped", 0) for e in truncated)
            ranks = sorted(e.get("args", {}).get("rank", "?") for e in truncated)
            fail(errors, f"trace is truncated ({total} events dropped by the "
                         f"per-stream cap across ranks {ranks})")
        if args.expect_pipeline:
            check_pipeline_expectations(events, errors)

    for msg in errors:
        print(f"FAIL: {msg}")
    if errors:
        return 1
    n_spans = sum(1 for e in events if e.get("ph") == "X")
    n_counters = sum(1 for e in events if e.get("ph") == "C")
    n_threads = len({(e.get('pid'), e.get('tid'))
                     for e in events if e.get("ph") in ("X", "C")})
    print(f"OK: {n_spans} spans, {n_counters} counter samples across "
          f"{n_threads} threads; schema, nesting and thread naming valid")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("path", help="trace or bundle JSON file")
    parser.add_argument("--bundle", action="store_true",
                        help="validate a post-mortem bundle instead of a trace")
    parser.add_argument("--expect-pipeline", action="store_true",
                        help="trace mode: require full-pipeline span structure")
    parser.add_argument("--allow-truncated", action="store_true",
                        help="trace mode: tolerate trace_truncated instants")
    parser.add_argument("--min-ring", type=int, default=1000,
                        help="bundle mode: minimum ring capacity (default 1000)")
    parser.add_argument("--expect-ranks", type=int, default=None,
                        help="bundle mode: require stream stats for ranks 0..N-1")
    parser.add_argument("--expect-trigger", default=None,
                        help="bundle mode: require this trigger kind")
    args = parser.parse_args(argv[1:])
    return run_bundle_mode(args) if args.bundle else run_trace_mode(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))

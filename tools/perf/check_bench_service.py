#!/usr/bin/env python3
"""Gate the service load-bench record produced by bench_service.

Reads BENCH_service.json and enforces the robustness contract of the
multi-tenant session service (docs/service.md):

  1. Conservation: every submitted request terminates exactly once —
     submitted == admitted + the four typed rejection counters, every
     admitted request completes, and completed == usable + failed.
     Nothing is lost, nothing is double-counted.
  2. Backpressure: the queue-depth high-water mark never exceeds the
     configured capacity (the queue is genuinely bounded), and the
     overload campaign converts its excess load into typed rejections
     (queue-full backpressure and/or deadline admission control).
  3. SLO: the in-capacity baseline campaign delivers a usable field for
     every request with p99 time-to-usable-field within the deadline.
  4. Degrade, don't fail: the seeded communication-fault campaign keeps
     the usable rate at 1.0 by falling down the degradation ladder —
     degraded solves, zero failed requests.

Usage: check_bench_service.py BENCH_service.json
"""

import json
import sys

REQUIRED_CAMPAIGNS = ("baseline", "overload", "faults")

REJECTION_KEYS = (
    "rejected_queue_full",
    "rejected_deadline",
    "rejected_unknown_session",
    "rejected_draining",
)


def check_campaign(c, failures):
    name = c["name"]

    def fail(msg):
        failures.append(f"[{name}] {msg}")

    rejected = sum(c[k] for k in REJECTION_KEYS)
    if c["submitted"] != c["admitted"] + rejected:
        fail(f"conservation broken: submitted {c['submitted']} != "
             f"admitted {c['admitted']} + rejected {rejected}")
    if c["completed"] != c["admitted"]:
        fail(f"lost requests: admitted {c['admitted']} but only "
             f"{c['completed']} completed")
    if c["usable"] + c["failed"] != c["completed"]:
        fail(f"accounting broken: usable {c['usable']} + failed "
             f"{c['failed']} != completed {c['completed']}")
    if c["degraded"] > c["usable"]:
        fail(f"degraded {c['degraded']} exceeds usable {c['usable']}")
    if c["max_queue_depth"] > c["queue_capacity"]:
        fail(f"queue depth {c['max_queue_depth']} exceeded capacity "
             f"{c['queue_capacity']} -- the queue is not bounded")
    t = c["time_to_usable_field_s"]
    if not (t["p50"] <= t["p99"] <= t["max"]):
        fail(f"percentiles disordered: p50 {t['p50']} p99 {t['p99']} "
             f"max {t['max']}")
    if c["completed"] > 0:
        rate = c["usable"] / c["completed"]
        if abs(rate - c["usable_rate"]) > 1e-6:
            fail(f"usable_rate {c['usable_rate']} inconsistent with "
                 f"usable/completed {rate:.6f}")

    if name == "baseline":
        if c["usable_rate"] < 1.0:
            fail(f"in-capacity load must stay fully usable, rate "
                 f"{c['usable_rate']:.4f}")
        if rejected != 0:
            fail(f"in-capacity load was rejected ({rejected} requests) -- "
                 "admission control is miscalibrated")
        if t["p99"] > c["deadline_s"]:
            fail(f"p99 time-to-usable-field {t['p99']:.3f}s misses the "
                 f"{c['deadline_s']:.1f}s deadline SLO")
    elif name == "overload":
        if rejected == 0:
            fail("overload produced no typed rejections -- backpressure "
                 "is not engaging")
        if c["crashes"] != 0:
            fail(f"overload crashed {c['crashes']} sessions")
    elif name == "faults":
        if c["usable_rate"] < 1.0:
            fail(f"fault campaign must degrade, not fail: usable rate "
                 f"{c['usable_rate']:.4f}")
        if c["degraded"] == 0:
            fail("every solve draws a certain comm fault yet none "
                 "degraded -- fault injection is not reaching the ladder")


def main(path):
    with open(path) as f:
        record = json.load(f)
    by_name = {c["name"]: c for c in record.get("campaigns", [])}

    failures = []
    for name in REQUIRED_CAMPAIGNS:
        if name not in by_name:
            raise SystemExit(f"FAIL: campaign {name!r} missing from {path}")

    for name in REQUIRED_CAMPAIGNS:
        c = by_name[name]
        t = c["time_to_usable_field_s"]
        rejected = sum(c[k] for k in REJECTION_KEYS)
        print(f"{name:9s}: submitted {c['submitted']:4d}  admitted "
              f"{c['admitted']:4d}  rejected {rejected:4d}  usable "
              f"{c['usable']:4d}  degraded {c['degraded']:4d}  failed "
              f"{c['failed']:3d}  depth {c['max_queue_depth']:3d}/"
              f"{c['queue_capacity']:<3d}  p99 {t['p99']:.3f}s")
        check_campaign(c, failures)

    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK: request conservation, bounded backpressure, baseline SLO and "
          "degrade-under-faults all within contract")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    sys.exit(main(sys.argv[1]))

#!/usr/bin/env python3
"""Gate the solver microbenchmark record produced by bench_micro.

Reads a google-benchmark JSON file (BENCH_solver.json in CI) and enforces
the two perf contracts of the block-CSR work:

  1. BM_BsrSpMV must process rows at least 1.5x faster than BM_SpMV
     (items_per_second; both kernels apply the same matrix, so rows/s is
     directly comparable).  bytes_per_second is reported for context
     only -- the block layout deliberately moves fewer bytes per row, so
     a bandwidth ratio understates the speedup.
  2. Classical Gram-Schmidt GMRES (BM_GmresAllreduces/cgs:1) must batch
     its reductions: at most 3 allreduce rounds per iteration (the
     orthogonalization batch, the cancellation-guard fallback, and the
     residual check), and strictly fewer than modified Gram-Schmidt
     (cgs:0), whose round count grows with the Krylov basis.

Usage: check_bench_solver.py BENCH_solver.json
"""

import json
import sys

BSR_MIN_SPEEDUP = 1.5
CGS_MAX_ROUNDS_PER_ITER = 3.0


def main(path):
    with open(path) as f:
        record = json.load(f)
    by_name = {b["name"]: b for b in record.get("benchmarks", [])}

    def need(name):
        if name not in by_name:
            raise SystemExit(f"FAIL: benchmark {name!r} missing from {path}")
        return by_name[name]

    csr = need("BM_SpMV")
    bsr = need("BM_BsrSpMV")
    speedup = bsr["items_per_second"] / csr["items_per_second"]
    print(f"SpMV effective bandwidth: CSR {csr['bytes_per_second'] / 1e9:.2f} GB/s, "
          f"BSR {bsr['bytes_per_second'] / 1e9:.2f} GB/s")
    print(f"SpMV row throughput: CSR {csr['items_per_second'] / 1e9:.2f} Grows/s, "
          f"BSR {bsr['items_per_second'] / 1e9:.2f} Grows/s ({speedup:.2f}x)")

    mgs = need("BM_GmresAllreduces/cgs:0")
    cgs = need("BM_GmresAllreduces/cgs:1")
    mgs_rounds = mgs["allreduces_per_iter"]
    cgs_rounds = cgs["allreduces_per_iter"]
    print(f"GMRES allreduce rounds per iteration: MGS {mgs_rounds:.2f}, "
          f"CGS {cgs_rounds:.2f}")

    failures = []
    if speedup < BSR_MIN_SPEEDUP:
        failures.append(
            f"BSR SpMV speedup {speedup:.2f}x below gate {BSR_MIN_SPEEDUP}x")
    if cgs_rounds > CGS_MAX_ROUNDS_PER_ITER:
        failures.append(
            f"CGS rounds/iter {cgs_rounds:.2f} above gate {CGS_MAX_ROUNDS_PER_ITER}")
    if cgs_rounds >= mgs_rounds:
        failures.append(
            f"CGS rounds/iter {cgs_rounds:.2f} not below MGS {mgs_rounds:.2f}")
    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK: BSR speedup and GMRES reduction batching within contract")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    sys.exit(main(sys.argv[1]))

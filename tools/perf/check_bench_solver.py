#!/usr/bin/env python3
"""Gate the solver microbenchmark record produced by bench_micro.

Reads a google-benchmark JSON file (BENCH_solver.json in CI) and enforces
the perf contracts of the block-CSR and observability work:

  1. BM_BsrSpMV must process rows at least 1.5x faster than BM_SpMV
     (items_per_second; both kernels apply the same matrix, so rows/s is
     directly comparable).  bytes_per_second is reported for context
     only -- the block layout deliberately moves fewer bytes per row, so
     a bandwidth ratio understates the speedup.
  2. Classical Gram-Schmidt GMRES (BM_GmresAllreduces/cgs:1) must batch
     its reductions: at most 3 allreduce rounds per iteration (the
     orthogonalization batch, the cancellation-guard fallback, and the
     residual check), and strictly fewer than modified Gram-Schmidt
     (cgs:0), whose round count grows with the Krylov basis.
  3. obs::Span must be free when tracing is off and cheap when it is on:
     a disabled span (BM_SpanOverhead/enabled:0 -- one relaxed atomic
     load) must cost at most 50 ns, and an enabled span with the solver's
     three-attribute payload (BM_SpanWithAttrsOverhead/enabled:1 -- two
     clock reads plus a buffered record) at most 5 us.  The bounds are
     deliberately loose absolute ceilings, not ratios: they catch a lock
     or allocation sneaking onto the hot path without flaking on CI
     machine variance.
  4. The record must come from an optimized binary on a quiet machine:
     the context key `neuro_build_type` (emitted by bench_micro's main
     from the translation unit's own NDEBUG/__OPTIMIZE__ state) must be
     "release", and `cpu_scaling_enabled` must be false.  The stock
     `library_build_type` key is useless here: it reports how the
     *benchmark library* was compiled, and distro packages ship debug
     builds, so it reads "debug" even for a -O2 bench binary.
  5. The matrix-free node-pair apply with SIMD kernels
     (BM_MatrixFreeApply/storage:0/scalar:0) must process rows at least
     1.3x faster than the same operator in scalar dispatch
     (storage:0/scalar:1), which delegates to the assembled BSR apply on
     an identical matrix and is therefore the BSR baseline.  The
     element-block and on-the-fly storage policies trade throughput for
     memory and are reported for context, not gated (docs/perf.md has
     the crossover analysis).
  6. The symmetric block kernel itself (BM_SimdBlockKernel/scalar:0, an
     L2-resident banded pattern) must beat its scalar twin (scalar:1) by
     at least 1.5x.  Auto-skipped when the runtime dispatch resolves to
     "scalar" (label field) -- a machine without SSE2/AVX2/NEON has no
     vector kernel to gate.
  7. Flight-recorder ring mode must stay black-box cheap: a disabled
     ring-mode span (BM_RingRecordOverhead/enabled:0) obeys the same
     50 ns inert-span bound, and steady-state ring recording with the
     solver attr payload (enabled:1, the ring wrapping on every record)
     at most 2x the legacy enabled-span bound (10 us).  The ring replaces
     truncate-and-drop, so this is the permanent cost of always-on
     post-mortem retention.

Usage: check_bench_solver.py BENCH_solver.json
"""

import json
import sys

BSR_MIN_SPEEDUP = 1.5
CGS_MAX_ROUNDS_PER_ITER = 3.0
DISABLED_SPAN_MAX_NS = 50.0
ENABLED_ATTR_SPAN_MAX_NS = 5000.0
# Flight-recorder ring mode (BM_RingRecordOverhead): steady-state wrapping
# must stay within 2x the legacy attr-span bound, and the disabled path is
# the same inert Span as BM_SpanOverhead/enabled:0.
RING_RECORD_MAX_NS = 2.0 * ENABLED_ATTR_SPAN_MAX_NS
RING_DISABLED_MAX_NS = DISABLED_SPAN_MAX_NS
MATRIX_FREE_MIN_SPEEDUP = 1.3
SIMD_KERNEL_MIN_SPEEDUP = 1.5

NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def cpu_ns(bench):
    return bench["cpu_time"] * NS_PER_UNIT[bench.get("time_unit", "ns")]


def main(path):
    with open(path) as f:
        record = json.load(f)
    by_name = {b["name"]: b for b in record.get("benchmarks", [])}

    def need(name):
        if name not in by_name:
            raise SystemExit(f"FAIL: benchmark {name!r} missing from {path}")
        return by_name[name]

    csr = need("BM_SpMV")
    bsr = need("BM_BsrSpMV")
    speedup = bsr["items_per_second"] / csr["items_per_second"]
    print(f"SpMV effective bandwidth: CSR {csr['bytes_per_second'] / 1e9:.2f} GB/s, "
          f"BSR {bsr['bytes_per_second'] / 1e9:.2f} GB/s")
    print(f"SpMV row throughput: CSR {csr['items_per_second'] / 1e9:.2f} Grows/s, "
          f"BSR {bsr['items_per_second'] / 1e9:.2f} Grows/s ({speedup:.2f}x)")

    mgs = need("BM_GmresAllreduces/cgs:0")
    cgs = need("BM_GmresAllreduces/cgs:1")
    mgs_rounds = mgs["allreduces_per_iter"]
    cgs_rounds = cgs["allreduces_per_iter"]
    print(f"GMRES allreduce rounds per iteration: MGS {mgs_rounds:.2f}, "
          f"CGS {cgs_rounds:.2f}")

    span_off = need("BM_SpanOverhead/enabled:0")
    span_on = need("BM_SpanOverhead/enabled:1")
    attr_on = need("BM_SpanWithAttrsOverhead/enabled:1")
    print(f"span overhead: disabled {cpu_ns(span_off):.1f} ns, enabled "
          f"{cpu_ns(span_on):.1f} ns, enabled+attrs {cpu_ns(attr_on):.1f} ns")
    ring_off = need("BM_RingRecordOverhead/enabled:0")
    ring_on = need("BM_RingRecordOverhead/enabled:1")
    print(f"ring record overhead: disabled {cpu_ns(ring_off):.1f} ns, "
          f"enabled {cpu_ns(ring_on):.1f} ns (steady-state wrap)")

    context = record.get("context", {})
    build_type = context.get("neuro_build_type", "missing")
    cpu_scaling = context.get("cpu_scaling_enabled", None)
    print(f"bench binary build type: {build_type} "
          f"(library_build_type {context.get('library_build_type', '?')} "
          "reflects the benchmark library, not the bench code; ignored)")
    print(f"cpu frequency scaling: {cpu_scaling}")
    print(f"runtime simd dispatch: {context.get('neuro_simd_target', '?')}")

    mf_simd = need("BM_MatrixFreeApply/storage:0/scalar:0")
    mf_scalar = need("BM_MatrixFreeApply/storage:0/scalar:1")
    mf_speedup = mf_simd["items_per_second"] / mf_scalar["items_per_second"]
    print(f"matrix-free apply [{mf_simd.get('label', '?')}]: "
          f"{mf_simd['items_per_second'] / 1e6:.1f} Mrows/s vs BSR-delegated "
          f"scalar {mf_scalar['items_per_second'] / 1e6:.1f} Mrows/s "
          f"({mf_speedup:.2f}x)")
    for arg, policy in ((1, "element-blocks"), (2, "on-the-fly")):
        alt = by_name.get(f"BM_MatrixFreeApply/storage:{arg}/scalar:0")
        if alt is not None:
            print(f"matrix-free apply [{alt.get('label', policy)}]: "
                  f"{alt['items_per_second'] / 1e6:.1f} Mrows/s "
                  "(context only, memory-bound by design)")

    kern_simd = need("BM_SimdBlockKernel/scalar:0")
    kern_scalar = need("BM_SimdBlockKernel/scalar:1")
    kern_target = kern_simd.get("label", "?")
    kern_speedup = (kern_simd["items_per_second"]
                    / kern_scalar["items_per_second"])
    print(f"simd block kernel [{kern_target}]: "
          f"{kern_simd['items_per_second'] / 1e6:.1f} Mblocks/s vs scalar "
          f"{kern_scalar['items_per_second'] / 1e6:.1f} Mblocks/s "
          f"({kern_speedup:.2f}x)")

    failures = []
    if build_type != "release":
        failures.append(
            f"neuro_build_type is {build_type!r}, not 'release' -- regenerate "
            "the record from an optimized build (timings from unoptimized "
            "code gate nothing)")
    if cpu_scaling is not False:
        failures.append(
            f"cpu_scaling_enabled is {cpu_scaling!r} -- pin the governor to "
            "performance before recording, or the ratios are noise")
    if mf_speedup < MATRIX_FREE_MIN_SPEEDUP:
        failures.append(
            f"matrix-free SIMD apply speedup {mf_speedup:.2f}x below gate "
            f"{MATRIX_FREE_MIN_SPEEDUP}x over the BSR-delegated scalar path")
    if kern_target == "scalar":
        print("SKIP: simd block kernel gate (runtime dispatch resolved to "
              "scalar -- no vector ISA on this host)")
    elif kern_speedup < SIMD_KERNEL_MIN_SPEEDUP:
        failures.append(
            f"simd block kernel [{kern_target}] speedup {kern_speedup:.2f}x "
            f"below gate {SIMD_KERNEL_MIN_SPEEDUP}x")
    if cpu_ns(span_off) > DISABLED_SPAN_MAX_NS:
        failures.append(
            f"disabled span costs {cpu_ns(span_off):.1f} ns, above gate "
            f"{DISABLED_SPAN_MAX_NS:.0f} ns -- the off path must stay a "
            "single relaxed load")
    if cpu_ns(attr_on) > ENABLED_ATTR_SPAN_MAX_NS:
        failures.append(
            f"enabled span with attrs costs {cpu_ns(attr_on):.1f} ns, above "
            f"gate {ENABLED_ATTR_SPAN_MAX_NS:.0f} ns -- a lock or allocation "
            "has crept onto the record path")
    if cpu_ns(ring_off) > RING_DISABLED_MAX_NS:
        failures.append(
            f"disabled ring record costs {cpu_ns(ring_off):.1f} ns, above "
            f"gate {RING_DISABLED_MAX_NS:.0f} ns -- ring mode must not touch "
            "the inert-span fast path")
    if cpu_ns(ring_on) > RING_RECORD_MAX_NS:
        failures.append(
            f"enabled ring record costs {cpu_ns(ring_on):.1f} ns, above gate "
            f"{RING_RECORD_MAX_NS:.0f} ns -- the flight-recorder wrap path "
            "must stay within 2x the legacy attr-span bound")
    if speedup < BSR_MIN_SPEEDUP:
        failures.append(
            f"BSR SpMV speedup {speedup:.2f}x below gate {BSR_MIN_SPEEDUP}x")
    if cgs_rounds > CGS_MAX_ROUNDS_PER_ITER:
        failures.append(
            f"CGS rounds/iter {cgs_rounds:.2f} above gate {CGS_MAX_ROUNDS_PER_ITER}")
    if cgs_rounds >= mgs_rounds:
        failures.append(
            f"CGS rounds/iter {cgs_rounds:.2f} not below MGS {mgs_rounds:.2f}")
    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK: build provenance, BSR and matrix-free speedups, SIMD kernel "
          "ratio, GMRES reduction batching and span overhead within contract")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    sys.exit(main(sys.argv[1]))

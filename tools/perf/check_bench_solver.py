#!/usr/bin/env python3
"""Gate the solver microbenchmark record produced by bench_micro.

Reads a google-benchmark JSON file (BENCH_solver.json in CI) and enforces
the perf contracts of the block-CSR and observability work:

  1. BM_BsrSpMV must process rows at least 1.5x faster than BM_SpMV
     (items_per_second; both kernels apply the same matrix, so rows/s is
     directly comparable).  bytes_per_second is reported for context
     only -- the block layout deliberately moves fewer bytes per row, so
     a bandwidth ratio understates the speedup.
  2. Classical Gram-Schmidt GMRES (BM_GmresAllreduces/cgs:1) must batch
     its reductions: at most 3 allreduce rounds per iteration (the
     orthogonalization batch, the cancellation-guard fallback, and the
     residual check), and strictly fewer than modified Gram-Schmidt
     (cgs:0), whose round count grows with the Krylov basis.
  3. obs::Span must be free when tracing is off and cheap when it is on:
     a disabled span (BM_SpanOverhead/enabled:0 -- one relaxed atomic
     load) must cost at most 50 ns, and an enabled span with the solver's
     three-attribute payload (BM_SpanWithAttrsOverhead/enabled:1 -- two
     clock reads plus a buffered record) at most 5 us.  The bounds are
     deliberately loose absolute ceilings, not ratios: they catch a lock
     or allocation sneaking onto the hot path without flaking on CI
     machine variance.

Usage: check_bench_solver.py BENCH_solver.json
"""

import json
import sys

BSR_MIN_SPEEDUP = 1.5
CGS_MAX_ROUNDS_PER_ITER = 3.0
DISABLED_SPAN_MAX_NS = 50.0
ENABLED_ATTR_SPAN_MAX_NS = 5000.0

NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def cpu_ns(bench):
    return bench["cpu_time"] * NS_PER_UNIT[bench.get("time_unit", "ns")]


def main(path):
    with open(path) as f:
        record = json.load(f)
    by_name = {b["name"]: b for b in record.get("benchmarks", [])}

    def need(name):
        if name not in by_name:
            raise SystemExit(f"FAIL: benchmark {name!r} missing from {path}")
        return by_name[name]

    csr = need("BM_SpMV")
    bsr = need("BM_BsrSpMV")
    speedup = bsr["items_per_second"] / csr["items_per_second"]
    print(f"SpMV effective bandwidth: CSR {csr['bytes_per_second'] / 1e9:.2f} GB/s, "
          f"BSR {bsr['bytes_per_second'] / 1e9:.2f} GB/s")
    print(f"SpMV row throughput: CSR {csr['items_per_second'] / 1e9:.2f} Grows/s, "
          f"BSR {bsr['items_per_second'] / 1e9:.2f} Grows/s ({speedup:.2f}x)")

    mgs = need("BM_GmresAllreduces/cgs:0")
    cgs = need("BM_GmresAllreduces/cgs:1")
    mgs_rounds = mgs["allreduces_per_iter"]
    cgs_rounds = cgs["allreduces_per_iter"]
    print(f"GMRES allreduce rounds per iteration: MGS {mgs_rounds:.2f}, "
          f"CGS {cgs_rounds:.2f}")

    span_off = need("BM_SpanOverhead/enabled:0")
    span_on = need("BM_SpanOverhead/enabled:1")
    attr_on = need("BM_SpanWithAttrsOverhead/enabled:1")
    print(f"span overhead: disabled {cpu_ns(span_off):.1f} ns, enabled "
          f"{cpu_ns(span_on):.1f} ns, enabled+attrs {cpu_ns(attr_on):.1f} ns")

    failures = []
    if cpu_ns(span_off) > DISABLED_SPAN_MAX_NS:
        failures.append(
            f"disabled span costs {cpu_ns(span_off):.1f} ns, above gate "
            f"{DISABLED_SPAN_MAX_NS:.0f} ns -- the off path must stay a "
            "single relaxed load")
    if cpu_ns(attr_on) > ENABLED_ATTR_SPAN_MAX_NS:
        failures.append(
            f"enabled span with attrs costs {cpu_ns(attr_on):.1f} ns, above "
            f"gate {ENABLED_ATTR_SPAN_MAX_NS:.0f} ns -- a lock or allocation "
            "has crept onto the record path")
    if speedup < BSR_MIN_SPEEDUP:
        failures.append(
            f"BSR SpMV speedup {speedup:.2f}x below gate {BSR_MIN_SPEEDUP}x")
    if cgs_rounds > CGS_MAX_ROUNDS_PER_ITER:
        failures.append(
            f"CGS rounds/iter {cgs_rounds:.2f} above gate {CGS_MAX_ROUNDS_PER_ITER}")
    if cgs_rounds >= mgs_rounds:
        failures.append(
            f"CGS rounds/iter {cgs_rounds:.2f} not below MGS {mgs_rounds:.2f}")
    for msg in failures:
        print(f"FAIL: {msg}")
    if failures:
        return 1
    print("OK: BSR speedup, GMRES reduction batching and span overhead "
          "within contract")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    sys.exit(main(sys.argv[1]))
